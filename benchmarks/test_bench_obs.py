"""Live-streaming overhead benchmarks for the batched-executor era.

The always-on telemetry budget (``test_bench_micro``) pins plain
instrumentation at <=5% of an uninstrumented run.  This file pins the
*live* layer on top of that: per-round ``flush_round`` calls feeding
a JSONL sink plus an alert rule must add <=5% over an
instrumented-but-not-streamed run, on every executor backend.  The
recorded evidence lives in ``BENCH_obs.json``; regenerate it with the
recipe in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks._bench_util import (
    assert_overhead_within,
    env_float,
    interleaved_best,
    timed,
)
from repro.engine.spec import DeploymentSpec
from repro.telemetry import JsonlStreamSink, Telemetry

START, END = 1000, 2800
# Measured well under 2% on an unloaded box; 5% is the acceptance
# budget with headroom for shared-CI noise.
OBS_OVERHEAD_BUDGET = env_float("OBS_OVERHEAD_BUDGET", 0.05)


def _spec(workers: int = 1, executor: str | None = None) -> DeploymentSpec:
    return DeploymentSpec(
        dataset_number=1,
        policy="full",
        budget=2.0,
        start=START,
        end=END,
        workers=workers,
        executor=executor,
    )


def _timed_run(spec: DeploymentSpec, telemetry: Telemetry) -> float:
    engine = spec.build_engine(telemetry=telemetry)
    elapsed, _ = timed(spec.execute, engine=engine)
    engine.close()
    return elapsed


def _live_telemetry(tmp_path: Path) -> Telemetry:
    telemetry = Telemetry(run_id="bench-live")
    telemetry.attach_sink(JsonlStreamSink(tmp_path / "stream.jsonl"))
    telemetry.add_alert_rule("battery_fraction_remaining < 0.25")
    return telemetry


def _overhead_thunks(spec: DeploymentSpec, tmp_path: Path):
    """The two interleaved variants: instrumented-only vs live."""

    def plain() -> float:
        return _timed_run(spec, Telemetry(run_id="bench-plain"))

    def live() -> float:
        telemetry = _live_telemetry(tmp_path)
        try:
            return _timed_run(spec, telemetry)
        finally:
            telemetry.close_sinks()

    return plain, live


def test_live_flush_overhead_under_budget(tmp_path):
    """Interleaved min-of-N on the serial backend: instrumented run
    with a live sink + alert rule vs instrumented run without."""
    spec = _spec()
    _timed_run(spec, Telemetry(run_id="warm"))  # warm caches
    best_plain, best_live = interleaved_best(
        5, *_overhead_thunks(spec, tmp_path)
    )
    assert_overhead_within(
        best_live, best_plain, OBS_OVERHEAD_BUDGET, "live streaming"
    )


@pytest.mark.parametrize("workers,executor", [(2, "pool"), (2, "shm")])
def test_live_flush_overhead_parallel_backends(tmp_path, workers, executor):
    """The flush happens on the coordinator, so worker fan-out must
    not change the overhead story; best-of-3 keeps this cheap."""
    spec = _spec(workers=workers, executor=executor)
    _timed_run(spec, Telemetry(run_id="warm"))
    best_plain, best_live = interleaved_best(
        3, *_overhead_thunks(spec, tmp_path)
    )
    assert_overhead_within(
        best_live, best_plain, OBS_OVERHEAD_BUDGET, f"{executor} live"
    )


def test_bench_obs_json_records_acceptance():
    """BENCH_obs.json pins <=5% live-flush overhead per backend; keep
    the recorded evidence self-consistent."""
    path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    data = json.loads(path.read_text())
    assert data["units"] == "seconds_best_of_n"
    for backend, entry in data["results"].items():
        overhead = entry["live_seconds"] / entry["plain_seconds"] - 1.0
        assert overhead == pytest.approx(
            entry["overhead_fraction"], abs=0.005
        ), backend
        assert entry["overhead_fraction"] <= 0.05, (
            f"{backend}: recorded overhead {entry['overhead_fraction']:.1%} "
            "breaks the pinned 5% budget"
        )

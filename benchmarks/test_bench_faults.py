"""Chaos benchmark: accuracy retention under packet loss and crashes.

Sweeps a loss-rate x crash-count grid over the networked deployment
and reports, per cell, the operational detection rate, how much of the
zero-fault rate it retains, and what the faults cost in messages and
Joules.  The acceptance floor — the fixed-seed 20 %-loss + one-crash
cell must retain at least ``RETENTION_FLOOR`` of the clean rate —
doubles as the CI chaos smoke test.
"""

from repro.experiments.faults import (
    ChaosSpec,
    accuracy_retention,
    chaos_sweep,
)
from repro.experiments.tables import format_table

RETENTION_FLOOR = 0.8
LOSS_RATES = (0.0, 0.2)
CRASH_COUNTS = (0, 1)


def test_bench_faults(runner_ds1):
    results = chaos_sweep(
        runner_ds1, loss_rates=LOSS_RATES, crash_counts=CRASH_COUNTS
    )
    baseline = results[0][1]
    assert baseline.spec.loss_rate == 0.0
    assert baseline.spec.crash_count == 0

    rows = []
    for spec, result in results:
        retention = accuracy_retention(result, baseline)
        rows.append([
            f"{spec.loss_rate:.0%}",
            str(spec.crash_count),
            f"{result.humans_detected}/{result.humans_present}",
            f"{result.detection_rate:.3f}",
            f"{retention:.3f}",
            str(result.retransmissions),
            str(result.gave_up),
            f"{result.total_radio_joules:.2f}",
            ",".join(sorted(result.fault_kinds())) or "-",
        ])
    print()
    print(format_table(
        ["loss", "crashes", "detected", "rate", "retention",
         "rexmit", "gave_up", "J drawn", "faults"],
        rows,
    ))

    # Every cell completed and produced decisions.
    for spec, result in results:
        assert result.num_decisions >= 1
        assert result.humans_present > 0

    # The clean cell really is clean.
    assert baseline.retransmissions == 0
    assert baseline.dropped_messages == 0
    assert not baseline.fault_events

    by_cell = {
        (spec.loss_rate, spec.crash_count): result
        for spec, result in results
    }
    # Loss forces retransmissions: more transmission attempts go out
    # (each charged to its sender; the per-camera Joule delta is
    # asserted deterministically in tests/test_faults.py).
    lossy = by_cell[(0.2, 0)]
    assert lossy.retransmissions > 0
    lossy_attempts = lossy.delivered_messages + lossy.dropped_messages
    clean_attempts = baseline.delivered_messages + baseline.dropped_messages
    assert lossy_attempts > clean_attempts

    # The crash is observed, logged, and answered with a re-selection.
    crashed = by_cell[(0.0, 1)]
    assert "node_crash" in crashed.fault_kinds()
    assert "camera_marked_dead" in crashed.fault_kinds()
    assert "reselected" in [e.kind for e in crashed.recovery_events]

    # Acceptance: the worst cell keeps >= 80 % of zero-fault accuracy.
    worst = by_cell[(0.2, 1)]
    retention = accuracy_retention(worst, baseline)
    print(f"worst-cell retention: {retention:.3f} "
          f"(floor {RETENTION_FLOOR})")
    assert retention >= RETENTION_FLOOR


def test_bench_faults_reboot_recovers_capacity(runner_ds1):
    """A rebooting camera is folded back in by the next re-selection."""
    spec = ChaosSpec(crash_count=1, reboot_s=25.0)
    from repro.experiments.faults import run_chaos

    result = run_chaos(spec, runner_ds1)
    recovery_kinds = [e.kind for e in result.recovery_events]
    print(f"\nrecovery events: {recovery_kinds}")
    assert "node_reboot" in recovery_kinds
    assert "camera_marked_alive" in recovery_kinds
    assert recovery_kinds.count("reselected") >= 2

"""Regenerate ``BENCH_predictive.json`` (see EXPERIMENTS.md).

Runs the predictive wake-up lifetime comparison of
:mod:`repro.experiments.predictive` — ``subset`` vs ``predictive`` on
the 8-camera single-scene ring — at two sleep-ration settings.  Every
number is deterministic (detection counts and Joules, no wall clock),
so the file regenerates byte-identically on any machine.

Run from the repo root:

    PYTHONPATH=src:. python benchmarks/gen_bench_predictive.py > BENCH_predictive.json
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.experiments.predictive import (
    BENCH_BATTERY_JOULES,
    BENCH_BUDGET,
    BENCH_CAMERAS,
    BENCH_CONFIG,
    BENCH_END,
    BENCH_START,
    BENCH_WAKE,
    compare_predictive_lifetime,
    predictive_context,
)

SLEEPER_SETTINGS = (2, 3)


def lifetime_entry(side) -> dict:
    return {
        "detected": side.humans_detected,
        "present": side.humans_present,
        "detection_rate": round(side.detection_rate, 4),
        "energy_joules": round(side.energy_joules, 2),
        "lifetime_passes": side.lifetime_passes,
    }


def main() -> None:
    context = predictive_context()
    results = {}
    for max_sleepers in SLEEPER_SETTINGS:
        wake = replace(BENCH_WAKE, max_sleepers=max_sleepers)
        report = compare_predictive_lifetime(context=context, wake=wake)
        results[f"max_sleepers_{max_sleepers}"] = {
            "wake": wake.to_dict(),
            "subset": lifetime_entry(report.subset),
            "predictive": lifetime_entry(report.predictive),
            "detection_retention": round(report.detection_retention, 4),
            "lifetime_extension": round(report.lifetime_extension, 4),
        }

    print(
        json.dumps(
            {
                "description": (
                    "Predictive wake-up policy lifetime extension: "
                    "'subset' (assess every camera every round) vs "
                    "'predictive' (per-camera RLS activity regressors "
                    "gate assessments; rationed sleep slots rotate "
                    "across the most redundant views) on 8 cameras "
                    "ringing dataset #1's scene.  Lifetime is analytic "
                    "from one pass's per-camera energy draw -- passes "
                    "of the identical window until fewer than 2 "
                    "batteries survive -- matching "
                    "repro.core.lifetime.simulate_lifetime semantics.  "
                    "All numbers are deterministic (no wall clock).  "
                    "Regenerate with benchmarks/gen_bench_predictive.py "
                    "(recipe in EXPERIMENTS.md)."
                ),
                "units": "detections_joules_and_passes",
                "setup": {
                    "cameras": BENCH_CAMERAS,
                    "budget": BENCH_BUDGET,
                    "window": {"start": BENCH_START, "end": BENCH_END},
                    "assessment_period": BENCH_CONFIG.assessment_period,
                    "recalibration_interval": (
                        BENCH_CONFIG.recalibration_interval
                    ),
                    "battery_joules": BENCH_BATTERY_JOULES,
                    "min_cameras": 2,
                    "seed": 2017,
                },
                "results": results,
            },
            indent=2,
        )
    )


if __name__ == "__main__":
    main()

"""Extension benchmark: the four real pixel-level detectors.

All four of the paper's algorithm families are implemented for real
(no OpenCV): sliding-window HOG, boosted aggregated-channel features
(ACF), chamfer-matched contours (C4) and a root+parts model (LSVM).
This bench trains them on dataset #1's training segment, evaluates on
test frames, and asserts the orderings the paper measures in Tables
II-IV: LSVM most accurate, HOG next; ACF an order of magnitude
cheaper than HOG.
"""

import time

import numpy as np

from repro.datasets.groundtruth import ground_truth_boxes
from repro.detection.channel_detector import ChannelFeatureDetector
from repro.detection.contour_detector import ContourDetector
from repro.detection.metrics import best_threshold
from repro.detection.parts_detector import PartBasedDetector
from repro.detection.window_detector import SlidingWindowHogDetector
from repro.experiments.tables import format_table


def run_family(runner):
    dataset = runner.dataset
    rng = np.random.default_rng(5)
    train_obs = []
    for record in dataset.frames(0, 500, only_ground_truth=True):
        for cam in dataset.camera_ids[:2]:
            train_obs.append(record.observations[cam])

    detectors = {
        "HOG": (SlidingWindowHogDetector.train(train_obs, rng), -0.8),
        "ACF": (ChannelFeatureDetector.train(train_obs, rng), -5.0),
        "C4": (ContourDetector(), -2.5),
        "LSVM": (PartBasedDetector.train(train_obs, rng), -1.2),
    }

    records = dataset.frames(1000, 1600, only_ground_truth=True)
    camera_id = dataset.camera_ids[0]
    results = {}
    for name, (detector, floor) in detectors.items():
        frames = []
        start = time.perf_counter()
        for record in records:
            obs = record.observation(camera_id)
            frames.append(
                (detector.detect(obs, rng, threshold=floor),
                 ground_truth_boxes(obs))
            )
        elapsed = (time.perf_counter() - start) / len(records)
        _, counts = best_threshold(frames, num_steps=60)
        results[name] = (counts, elapsed)
    return results


def test_bench_real_detectors(benchmark, runner_ds1):
    results = benchmark.pedantic(
        run_family, args=(runner_ds1,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["detector", "recall", "precision", "f_score", "ms/frame"],
        [
            [name, counts.recall, counts.precision, counts.f_score,
             1000 * elapsed]
            for name, (counts, elapsed) in results.items()
        ],
    ))

    f_scores = {name: counts.f_score for name, (counts, _) in results.items()}
    times = {name: elapsed for name, (_, elapsed) in results.items()}

    # Accuracy ordering on the clean lab scene (Table II's shape):
    # the part-based model leads, the rigid HOG template is next.
    assert f_scores["LSVM"] >= f_scores["HOG"] - 0.03
    assert f_scores["HOG"] > f_scores["ACF"] - 0.05
    # Every family detects people far above chance.
    assert min(f_scores.values()) > 0.3

    # Speed: ACF is by far the cheapest scan (paper: 0.1 s vs 1.5 s).
    assert times["ACF"] * 4 < times["HOG"]
    assert times["ACF"] * 2 < times["LSVM"]

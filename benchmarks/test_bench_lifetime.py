"""Extension benchmark: network lifetime under finite batteries.

The paper motivates EECS with network longevity.  With every camera on
a small battery, the all-best policy drains the fleet fastest; EECS's
camera subsets and algorithm downgrades stretch the same batteries
over more processed frames.
"""

from repro.core.lifetime import lifetime_extension
from repro.experiments.tables import format_table


def test_bench_lifetime(benchmark, runner_ds1):
    results = benchmark.pedantic(
        lifetime_extension,
        args=(runner_ds1,),
        kwargs=dict(battery_joules=600.0, budget=2.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ["policy", "frames survived", "humans detected",
         "energy (J)", "camera deaths"],
        [
            [r.mode, r.frames_survived, r.humans_detected,
             r.energy_consumed, str(r.deaths)]
            for r in results.values()
        ],
    ))

    baseline = results["all_best"]
    eecs = results["full"]

    # EECS survives at least as long and watches at least as many
    # frames on the same batteries.
    assert eecs.frames_survived >= baseline.frames_survived

    # Longevity translates into total mission value: at least as many
    # humans detected over the network's life.
    assert eecs.humans_detected >= 0.9 * baseline.humans_detected

"""Fleet-scale coordination benchmarks.

Flat ``subset`` selection ranks the entire fleet in one controller —
a superlinear term that dominates wall-clock as the fleet grows.  The
``cell`` policy shards that work across per-cell controllers under the
budget coordinator; ``peer`` removes the controller entirely.  These
guards pin the two claims recorded in ``BENCH_fleet.json``:

- sharding wins: at 200 cameras the cell policy must beat the flat
  baseline by ``FLEET_MIN_SPEEDUP`` (measured ~11x; 1000-camera
  numbers, ~100x, are recorded offline — the flat run alone takes
  ~3 minutes);
- sharding does not give up detections: per-cell retention vs the
  flat baseline stays above ``FLEET_RETENTION_FLOOR``.

Plus an absolute 50-camera cell-policy throughput floor for the CI
``fleet-smoke`` job.  Regenerate BENCH_fleet.json with
``benchmarks/gen_bench_fleet.py`` (recipe in EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks._bench_util import (
    assert_floor,
    env_float,
    interleaved_best,
    timed,
)
from repro.engine import DeploymentEngine, fleet_context

START = 1000
# Measured ~11x at 200 cameras on an unloaded box; 3x leaves CI-noise
# headroom while still failing if cell select degenerates to flat.
FLEET_MIN_SPEEDUP = env_float("FLEET_MIN_SPEEDUP", 3.0)
# Measured ~1.0 (cells slightly beat flat); 0.9 is the guard.
FLEET_RETENTION_FLOOR = env_float("FLEET_RETENTION_FLOOR", 0.9)
# Measured ~40 rounds/sec for the 50-camera cell policy; floor well
# below that but far above the flat baseline's ~19.
FLEET_RPS_FLOOR = env_float("FLEET_RPS_FLOOR", 8.0)


@pytest.fixture(scope="module")
def fleet50():
    context = fleet_context(50)
    context.dataset.frames(START, 1100, only_ground_truth=True)
    return context


@pytest.fixture(scope="module")
def fleet200():
    context = fleet_context(200)
    context.dataset.frames(START, 1050, only_ground_truth=True)
    return context


def _run_once(context, policy, end, **kwargs):
    engine = DeploymentEngine(context, seed=2017)
    elapsed, result = timed(
        engine.run, policy, budget=2.0, start=START, end=end, **kwargs
    )
    engine.close()
    return elapsed, result


def test_cell_beats_flat_subset_at_200_cameras(fleet200):
    """Interleaved min-of-N: sharded cells vs one flat controller on
    the same 200-camera fleet, under the same load."""
    results = {}

    def flat() -> float:
        elapsed, results["flat"] = _run_once(fleet200, "subset", 1050)
        return elapsed

    def sharded() -> float:
        elapsed, results["cell"] = _run_once(
            fleet200, "cell", 1050, cells=20
        )
        return elapsed

    best_flat, best_cell = interleaved_best(3, flat, sharded)
    speedup = best_flat / best_cell
    assert speedup >= FLEET_MIN_SPEEDUP, (
        f"200-camera cell policy is only {speedup:.2f}x the flat "
        f"subset baseline (need >= {FLEET_MIN_SPEEDUP}x); "
        f"flat={best_flat:.3f}s cell={best_cell:.3f}s"
    )
    retention = (
        results["cell"].humans_detected / results["flat"].humans_detected
    )
    assert_floor(
        retention,
        FLEET_RETENTION_FLOOR,
        "200-camera cell detection retention vs flat subset "
        "(FLEET_RETENTION_FLOOR)",
    )


def test_cell_throughput_floor_50_cameras(fleet50):
    """Absolute rounds/sec floor for the CI fleet-smoke job."""
    rounds = (1100 - START) // 25
    best = min(
        _run_once(fleet50, "cell", 1100, cells=5)[0] for _ in range(5)
    )
    assert_floor(
        rounds / best,
        FLEET_RPS_FLOOR,
        f"50-camera cell rounds/sec (window {START}..1100, "
        "FLEET_RPS_FLOOR)",
    )


def test_peer_tracks_cell_throughput_at_50_cameras(fleet50):
    """The decentralized policy must stay within the same order of
    magnitude as the cell hierarchy — negotiation is rounds of cheap
    claim messages, not a second selection pass."""

    def cell() -> float:
        return _run_once(fleet50, "cell", 1100, cells=5)[0]

    def peer() -> float:
        return _run_once(fleet50, "peer", 1100)[0]

    best_cell, best_peer = interleaved_best(3, cell, peer)
    assert best_peer <= 5.0 * best_cell, (
        f"peer negotiation {best_peer:.3f}s is more than 5x the cell "
        f"hierarchy's {best_cell:.3f}s at 50 cameras"
    )


def test_bench_fleet_json_records_acceptance():
    """BENCH_fleet.json pins the sharding speedup ladder and the
    retention floor; keep the recorded evidence self-consistent."""
    path = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    data = json.loads(path.read_text())
    assert data["units"] == "seconds_best_of_n"
    speedups = {}
    for scale, entry in data["results"].items():
        flat, cell = entry["subset"], entry["cell"]
        recorded = entry["cell_speedup_vs_subset"]
        assert flat["seconds"] / cell["seconds"] == pytest.approx(
            recorded, rel=0.01
        ), scale
        assert entry[
            "cell_detection_retention_vs_subset"
        ] == pytest.approx(
            cell["detected"] / flat["detected"], abs=0.001
        ), scale
        assert entry["cell_detection_retention_vs_subset"] >= 0.9, scale
        speedups[scale] = recorded
    # The headline ladder: sharding pays more the bigger the fleet.
    assert speedups["200_cameras"] >= 5.0
    assert speedups["1000_cameras"] >= 50.0
    assert (
        speedups["50_cameras"]
        < speedups["200_cameras"]
        < speedups["1000_cameras"]
    )

"""Fig. 4: accuracy versus energy for camera/algorithm combinations on
dataset #1.

Paper: 2HOG+2ACF consumes ~54% of 4HOG's energy while detecting 85%
of the scene's objects versus 92% — the trade-off EECS exploits.
"""

from repro.experiments.fig4 import tradeoff_curve
from repro.experiments.tables import format_table


def test_bench_fig4(benchmark, runner_ds1):
    points = benchmark.pedantic(
        tradeoff_curve,
        kwargs=dict(dataset_number=1, runner=runner_ds1),
        rounds=1,
        iterations=1,
    )
    by_label = {p.label: p for p in points}
    print()
    print(format_table(
        ["config", "detected", "present", "recall", "energy (J)"],
        [
            [p.label, p.humans_detected, p.humans_present, p.recall,
             p.energy_joules]
            for p in points
        ],
    ))

    # Energy orderings: ACF configs are far cheaper than HOG configs;
    # more cameras cost more.
    assert by_label["4ACF"].energy_joules < 0.2 * by_label["4HOG"].energy_joules
    assert by_label["2HOG"].energy_joules < by_label["4HOG"].energy_joules

    # The paper's headline point: the mixed config costs roughly half
    # of 4HOG with a small accuracy gap.
    mixed, full = by_label["2HOG+2ACF"], by_label["4HOG"]
    ratio = mixed.energy_joules / full.energy_joules
    assert 0.4 < ratio < 0.7
    assert full.recall - mixed.recall < 0.15

    # Accuracy orderings: 4 cameras beat 2; HOG beats ACF per count.
    assert by_label["4HOG"].recall > by_label["2HOG"].recall
    assert by_label["2HOG"].recall > by_label["2ACF"].recall

"""Resilience benchmark: graceful degradation under sensor faults.

Runs one short chaos deployment per data-plane fault class — stuck
sensor, garbage sensor (suppressed real detections plus fabricated
ones), calibration drift, clock skew, and payload corruption — twice
on the same seeds: once bare, once with the graceful-degradation
layer (health monitoring, circuit breakers, staged quarantine).

The operating point is chosen so degradation has somewhere to go: at
``budget=1.0`` the subset policy selects two of dataset #1's four
cameras, leaving two healthy idle substitutes.  Every fault targets
``lab-cam3`` — a member of the selected set — so an undetected fault
directly damages operational accuracy, while quarantining the camera
lets re-selection promote a substitute.

Acceptance (the CI floor):

* every scenario's resilience-on accuracy retention stays at or above
  ``RESILIENCE_RETENTION_FLOOR`` (default 0.7, env-overridable);
* no scenario gets *worse* with resilience enabled;
* over the whole suite, mean resilience-on retention is strictly
  above resilience-off on the same seeds;
* with zero faults injected the layer is inert: the chaos outcome is
  bit-identical to the bare run, field for field.
"""

import os

import pytest

from repro.experiments.faults import ChaosSpec, accuracy_retention, run_chaos
from repro.experiments.tables import format_table
from repro.faults.plan import (
    CalibrationDrift,
    ClockSkew,
    FaultPlan,
    MessageCorruption,
    SensorFault,
)
from repro.resilience.health import HealthConfig
from repro.resilience.ladder import ResilienceConfig
from tests.golden_utils import chaos_result_fingerprint, make_golden_runner

RETENTION_FLOOR = float(os.environ.get("RESILIENCE_RETENTION_FLOOR", "0.7"))

#: Two of four cameras selected -> healthy idle substitutes exist.
BUDGET = 1.0
NUM_FRAMES = 14
#: A member of the selected set at this budget (pinned by the test).
TARGET = "lab-cam3"

#: Deployment-tuned monitor: the fault window opens a third into the
#: horizon, so baselines must be credible after ~4 clean frames, and
#: the residual channel trips at 3 sigma rather than the default 4.
TUNED = ResilienceConfig(
    enabled=True,
    health=HealthConfig(min_samples=4, residual_z_limit=3.0),
)


def _spec(resilience=None) -> ChaosSpec:
    return ChaosSpec(
        num_frames=NUM_FRAMES, budget=BUDGET, resilience=resilience
    )


@pytest.fixture(scope="module")
def golden_runner():
    """The goldens' exact runner: at BUDGET the subset policy selects
    {lab-cam3, lab-cam4}, which the scenario design depends on."""
    return make_golden_runner()


def _scenarios(horizon_s: float) -> dict[str, list]:
    """One fault schedule per data-plane fault class, all on TARGET.

    Windows open a third into the horizon (after the first assignment
    is in force) and run to the end, matching the chaos default.
    """
    window = {"start_s": horizon_s / 3.0, "end_s": horizon_s}
    return {
        "stuck": [SensorFault(node_id=TARGET, stuck=True, **window)],
        "garbage": [
            SensorFault(
                node_id=TARGET,
                noise=0.9,
                false_positive_rate=6.0,
                **window,
            )
        ],
        "drift": [
            CalibrationDrift(
                node_id=TARGET, score_drift_per_s=-0.1, **window
            )
        ],
        "skew": [ClockSkew(node_id=TARGET, skew=2.0, **window)],
        "corrupt": [MessageCorruption(node_a=TARGET, rate=0.9, **window)],
    }


def test_bench_resilience_retention(golden_runner):
    clean = run_chaos(_spec(), golden_runner)
    # The operating point is load-bearing: the faulted camera must be
    # in the selected set, with idle substitutes left over.
    assert TARGET in clean.final_assignment
    assert len(clean.final_assignment) < len(
        golden_runner.dataset.camera_ids
    )

    rows = []
    retentions: dict[str, tuple[float, float]] = {}
    results: dict[str, tuple] = {}
    for name, faults in _scenarios(_spec().horizon_s).items():
        plan = FaultPlan(seed=7).with_data_faults(*faults)
        bare = run_chaos(_spec(), golden_runner, plan=plan)
        guarded = run_chaos(_spec(resilience=TUNED), golden_runner, plan=plan)
        ret_off = accuracy_retention(bare, clean)
        ret_on = accuracy_retention(guarded, clean)
        retentions[name] = (ret_off, ret_on)
        results[name] = (bare, guarded)
        ladder = sorted(
            {
                e.kind
                for e in guarded.fault_events + guarded.recovery_events
                if e.kind.startswith("camera_")
            }
        )
        rows.append([
            name,
            f"{ret_off:.3f}",
            f"{ret_on:.3f}",
            guarded.camera_modes.get(TARGET, "-"),
            ",".join(ladder) or "-",
        ])
    print()
    print(format_table(
        ["fault class", "ret off", "ret on", "final mode", "ladder events"],
        rows,
    ))

    # Per-class floors: resilience never drops a class below the CI
    # floor, and never makes a class worse than doing nothing.
    for name, (ret_off, ret_on) in retentions.items():
        assert ret_on >= RETENTION_FLOOR, (
            f"{name}: resilience-on retention {ret_on:.3f} below floor "
            f"{RETENTION_FLOOR}"
        )
        assert ret_on >= ret_off, (
            f"{name}: resilience made things worse "
            f"({ret_on:.3f} < {ret_off:.3f})"
        )

    # Suite-level: on the same seeds, the layer strictly improves mean
    # retention across the fault classes.
    mean_off = sum(r[0] for r in retentions.values()) / len(retentions)
    mean_on = sum(r[1] for r in retentions.values()) / len(retentions)
    print(f"mean retention: off={mean_off:.4f} on={mean_on:.4f} "
          f"(floor {RETENTION_FLOOR})")
    assert mean_on > mean_off

    # The ladder actually engaged where it should have:
    # a stuck/garbage sensor ends the run quarantined, with the
    # re-selection that replaced it on record ...
    for name in ("stuck", "garbage"):
        _, guarded = results[name]
        assert guarded.camera_modes.get(TARGET) == "quarantined", name
        assert "camera_quarantined" in guarded.fault_kinds(), name
        assert "reselected" in [
            e.kind for e in guarded.recovery_events
        ], name
    # ... drifting calibration and a skewed clock are weaker evidence:
    # the camera is downgraded, never quarantined outright.
    for name in ("drift", "skew"):
        _, guarded = results[name]
        assert "camera_degraded" in guarded.fault_kinds(), name
        assert "camera_quarantined" not in guarded.fault_kinds(), name
    # ... and garbled payloads are observed at the receiver.
    _, guarded = results["corrupt"]
    assert guarded.corrupted_received > 0


def test_bench_resilience_inert_without_faults(golden_runner):
    """Zero faults: the layer observes, decides nothing, changes nothing.

    Every fingerprint field must be bit-identical; the only visible
    trace of the layer is the (all-active) camera-mode map it reports.
    """
    bare = chaos_result_fingerprint(run_chaos(_spec(), golden_runner))
    guarded = chaos_result_fingerprint(
        run_chaos(_spec(resilience=TUNED), golden_runner)
    )
    modes = guarded.pop("camera_modes")
    assert set(modes.values()) == {"active"}
    bare.pop("camera_modes")
    assert guarded == bare

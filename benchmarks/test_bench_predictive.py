"""Predictive wake-up policy benchmarks.

The tentpole claim: gating assessments with per-camera activity
regressors — rationed so at most ``max_sleepers`` redundant views
sleep per round — extends analytic network lifetime by at least
``PREDICTIVE_MIN_EXTENSION`` while keeping detection retention above
``PREDICTIVE_RETENTION_FLOOR`` versus the ``subset`` baseline on the
8-camera single-scene ring.  Measured 1.88x at 98.7% retention
(``max_sleepers=2``); the floors below leave headroom without letting
the policy degenerate.

Unlike the wall-clock benches, every number here is deterministic, so
the floors double as regression pins.  Evidence is recorded in
``BENCH_predictive.json`` (regenerate with
``benchmarks/gen_bench_predictive.py``; recipe in EXPERIMENTS.md) and
the ``predictive-smoke`` CI job runs this file.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks._bench_util import assert_floor, env_float
from repro.experiments.predictive import (
    compare_predictive_lifetime,
    predictive_context,
)

# Measured 1.875x lifetime at max_sleepers=2; the ISSUE floor is 1.3x.
PREDICTIVE_MIN_EXTENSION = env_float("PREDICTIVE_MIN_EXTENSION", 1.3)
# Measured 0.9871 retention; the ISSUE cap is <= 2% loss.
PREDICTIVE_RETENTION_FLOOR = env_float("PREDICTIVE_RETENTION_FLOOR", 0.98)


@pytest.fixture(scope="module")
def report():
    return compare_predictive_lifetime(context=predictive_context())


def test_lifetime_extension_floor(report):
    assert_floor(
        report.lifetime_extension,
        PREDICTIVE_MIN_EXTENSION,
        "predictive lifetime extension vs subset "
        "(PREDICTIVE_MIN_EXTENSION)",
    )


def test_detection_retention_floor(report):
    assert_floor(
        report.detection_retention,
        PREDICTIVE_RETENTION_FLOOR,
        "predictive detection retention vs subset "
        "(PREDICTIVE_RETENTION_FLOOR)",
    )


def test_predictive_actually_saves_energy(report):
    """The extension must come from a genuinely smaller energy bill,
    not a quirk of the analytic pass arithmetic."""
    assert report.predictive.energy_joules < report.subset.energy_joules


def test_bench_predictive_json_records_acceptance():
    """BENCH_predictive.json pins the recorded evidence; keep its
    ratios self-consistent and above the acceptance floors."""
    path = (
        Path(__file__).resolve().parent.parent / "BENCH_predictive.json"
    )
    data = json.loads(path.read_text())
    assert data["units"] == "detections_joules_and_passes"
    assert data["setup"]["cameras"] == 8
    for name, entry in data["results"].items():
        subset, pred = entry["subset"], entry["predictive"]
        assert entry["detection_retention"] == pytest.approx(
            pred["detection_rate"] / subset["detection_rate"], abs=0.001
        ), name
        assert entry["lifetime_extension"] == pytest.approx(
            pred["lifetime_passes"] / subset["lifetime_passes"], abs=0.001
        ), name
        assert pred["energy_joules"] < subset["energy_joules"], name
        # The recorded operating points meet the acceptance criteria:
        # >= 1.3x lifetime at <= 2% detection loss.
        assert entry["lifetime_extension"] >= 1.3, name
        assert entry["detection_retention"] >= 0.98, name
    # The ration trade: more sleepers, more lifetime, less retention.
    two = data["results"]["max_sleepers_2"]
    three = data["results"]["max_sleepers_3"]
    assert three["lifetime_extension"] > two["lifetime_extension"]
    assert three["detection_retention"] <= two["detection_retention"]

"""Figs. 5a/5b: EECS versus the all-best baseline on dataset #1 under
two budget regimes.

Paper, Fig. 5a (budget >= 1.08 J, HOG affordable):
    all cameras, best algorithms:  ~333 J, 373 humans
    EECS camera subset:            ~248 J (75%), 341 humans (91%)
    EECS + downgrade:              ~198 J (59%), 322 humans (86%)

Paper, Fig. 5b (budget in [0.07, 1.08), only ACF affordable):
    all cameras: ~22 J, 307 humans;  EECS: ~15 J (68%), 269 (88%)

Shape asserted: the energy staircase (all_best > subset >= full), the
camera-subset reduction, and accuracy retention above the gamma_n
slack.  Our simulated substrate saves somewhat less than the paper's
testbed because the assessment overhead is charged in full; the
ordering and regimes match.
"""

from repro.experiments.fig5 import (
    HIGH_BUDGET,
    LOW_BUDGET,
    accuracy_retention,
    energy_savings,
    run_modes,
)
from repro.experiments.tables import format_table


def _report(results):
    print()
    print(format_table(
        ["mode", "detected", "present", "energy (J)", "cameras/round"],
        [
            [r.mode, r.humans_detected, r.humans_present,
             r.energy_joules, str(r.cameras_per_round)]
            for r in results.values()
        ],
    ))


def test_bench_fig5a(benchmark, runner_ds1):
    results = benchmark.pedantic(
        run_modes,
        kwargs=dict(dataset_number=1, budget=HIGH_BUDGET, runner=runner_ds1),
        rounds=1,
        iterations=1,
    )
    _report(results)
    savings = energy_savings(results)
    retention = accuracy_retention(results)
    print(f"energy vs baseline: {savings}")
    print(f"accuracy vs baseline: {retention}")

    # The staircase: full <= subset < all_best.
    assert savings["full"] <= savings["subset"] + 0.02
    assert savings["full"] < 0.9

    # EECS drops to <= 3 cameras in at least some rounds.
    assert min(results["full"].cameras_per_round) <= 3

    # Downgrade actually mixes in ACF.
    # (The decisions are not kept in ModeResult; the camera counts and
    # the energy drop below subset level evidence the downgrade.)
    assert results["full"].energy_joules <= results["subset"].energy_joules

    # Accuracy retention at or above the paper's ~86%.
    assert retention["full"] >= 0.80


def test_bench_fig5b(benchmark, runner_ds1):
    results = benchmark.pedantic(
        run_modes,
        kwargs=dict(dataset_number=1, budget=LOW_BUDGET, runner=runner_ds1),
        rounds=1,
        iterations=1,
    )
    _report(results)
    savings = energy_savings(results)
    retention = accuracy_retention(results)
    print(f"energy vs baseline: {savings}")
    print(f"accuracy vs baseline: {retention}")

    # The whole network runs ACF: the baseline's total is tiny compared
    # to the high-budget regime (paper: ~22 J vs ~333 J).
    assert results["all_best"].energy_joules < 40.0

    # EECS saves energy by dropping cameras; with ACF already the
    # cheapest algorithm, downgrade cannot add savings beyond subset.
    assert savings["full"] <= 1.0
    assert retention["full"] >= 0.80

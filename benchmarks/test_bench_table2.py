"""Table II: algorithm accuracy/cost on dataset #1, camera 1, training
segment.

Paper's measured operating points (threshold / recall / precision /
f_score / J / s):

    HOG   0.5   0.48  1.00  0.66   1.08  1.5
    ACF   2     0.34  0.95  0.505  0.07  0.1
    C4    0     0.46  1.00  0.63   4.92  2.4
    LSVM  -1.2  0.89  0.90  0.89   3.31  6.2

Shape asserted: LSVM most accurate, HOG second, ACF least accurate but
cheapest; energy figures match the fitted smartphone measurements.
"""

from repro.experiments.table2_3_4 import algorithm_table, render_table

PAPER_F_SCORES = {"HOG": 0.66, "ACF": 0.505, "C4": 0.63, "LSVM": 0.89}


def test_bench_table2(benchmark, runner_ds1):
    rows = benchmark.pedantic(
        algorithm_table,
        kwargs=dict(
            dataset_number=1,
            camera_index=0,
            segment="train",
            dataset=runner_ds1.dataset,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Table II (dataset #1, cam 1, train)"))

    by_name = {r.algorithm: r for r in rows}
    # Accuracy ordering: LSVM > HOG > ACF; ACF cheapest; LSVM slowest.
    assert by_name["LSVM"].f_score > by_name["HOG"].f_score
    assert by_name["HOG"].f_score > by_name["ACF"].f_score
    assert by_name["ACF"].energy_per_frame == min(
        r.energy_per_frame for r in rows
    )
    assert by_name["LSVM"].time_per_frame == max(
        r.time_per_frame for r in rows
    )
    # Energy figures reproduce the paper's Joules (fitted exactly).
    assert abs(by_name["HOG"].energy_per_frame - 1.08) < 0.05
    assert abs(by_name["ACF"].energy_per_frame - 0.07) < 0.01
    # Swept f_scores land near the paper's values.
    for name, f_paper in PAPER_F_SCORES.items():
        assert abs(by_name[name].f_score - f_paper) < 0.15, (
            name, by_name[name].f_score, f_paper,
        )

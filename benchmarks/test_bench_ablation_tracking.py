"""Ablation: track-level coverage versus frame-level detection.

Quantifies Section VII's claim that per-frame misses are recovered
across frames: a cheap two-camera ACF deployment is run with and
without a ground-plane Kalman tracker on top, and coverage rates are
compared.
"""

import numpy as np

from repro.datasets.groundtruth import persons_in_any_view
from repro.experiments.tables import format_table
from repro.tracking import GroundPlaneTracker


def measure_coverage(runner):
    dataset = runner.dataset
    cams = dataset.camera_ids
    assignment = {cams[0]: "ACF", cams[1]: "ACF"}
    records = dataset.frames(1000, 3000, only_ground_truth=True)
    tracker = GroundPlaneTracker(gate=4.0, confirm_hits=2, max_misses=3)
    rng = np.random.default_rng(13)

    frame_hits = track_hits = present_total = 0
    for record in records:
        detections = []
        for camera_id, algorithm in assignment.items():
            item = runner.library.get(f"T-{camera_id}")
            threshold = item.profile(algorithm).threshold
            obs = record.observation(camera_id)
            dets = runner.detectors[algorithm].detect(
                obs, rng, threshold=threshold
            )
            detections.extend(dets)
        groups = runner.matcher.group(detections)
        tracker.step(groups)

        present = persons_in_any_view(record.observations)
        detected_now = {
            g.majority_truth_id for g in groups if g.is_true_object
        }
        covered = tracker.tracked_truth_ids()
        frame_hits += len(detected_now & present)
        track_hits += len(covered & present)
        present_total += len(present)
    return frame_hits, track_hits, present_total


def test_bench_ablation_tracking(benchmark, runner_ds1):
    frame_hits, track_hits, present = benchmark.pedantic(
        measure_coverage, args=(runner_ds1,), rounds=1, iterations=1
    )
    frame_rate = frame_hits / present
    track_rate = track_hits / present
    print()
    print(format_table(
        ["metric", "covered", "of", "rate"],
        [
            ["frame-level detections", frame_hits, present, frame_rate],
            ["track-level coverage", track_hits, present, track_rate],
        ],
    ))

    # Tracking recovers coverage lost to per-frame misses.
    assert track_rate >= frame_rate - 0.02
    # The cheap deployment leaves real headroom, so the comparison is
    # meaningful, and tracking closes part of it.
    assert track_rate > 0.5

"""Shared benchmark fixtures: offline-trained runners per dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.harness import get_runner


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def runner_ds1():
    return get_runner(1)


@pytest.fixture(scope="session")
def runner_ds2():
    return get_runner(2)


@pytest.fixture(scope="session")
def runner_ds3():
    return get_runner(3)

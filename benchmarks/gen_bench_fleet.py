"""Regenerate ``BENCH_fleet.json`` (see EXPERIMENTS.md).

Times flat ``subset`` vs sharded ``cell`` vs decentralized ``peer``
on tiled fleets of 50 / 200 / 1000 cameras.  The window shrinks as
the fleet grows so the flat baseline stays measurable — flat greedy
selection over the whole fleet is the quadratic-ish term the cell
hierarchy removes.

Run from the repo root:

    PYTHONPATH=src:. python benchmarks/gen_bench_fleet.py > BENCH_fleet.json
"""

from __future__ import annotations

import json
import time

from repro.engine import DeploymentEngine, fleet_context

START = 1000
# (num_cameras, end_frame, cells, repeats, flat_repeats)
SCALES = [
    (50, 1100, 5, 5, 5),
    (200, 1050, 20, 3, 3),
    (1000, 1025, 100, 3, 1),
]


def best_of(repeats, context, policy, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = DeploymentEngine(context, seed=2017)
        t0 = time.perf_counter()
        result = engine.run(policy, budget=2.0, **kwargs)
        best = min(best, time.perf_counter() - t0)
        engine.close()
    return best, result


def entry(seconds, result, repeats, rounds, **extra):
    return {
        "seconds": round(seconds, 4),
        "rounds_per_sec": round(rounds / seconds, 3),
        "repeats": repeats,
        "detected": result.humans_detected,
        "present": result.humans_present,
        **extra,
    }


def main() -> None:
    results = {}
    for num_cameras, end, cells, repeats, flat_repeats in SCALES:
        context = fleet_context(num_cameras)
        # Pre-render the window so frame caching is excluded.
        context.dataset.frames(START, end, only_ground_truth=True)
        rounds = (end - START) // 25  # dataset 1 gt_every

        flat_s, flat = best_of(
            flat_repeats, context, "subset", start=START, end=end
        )
        cell_s, cell = best_of(
            repeats, context, "cell", cells=cells, start=START, end=end
        )
        peer_s, peer = best_of(
            repeats, context, "peer", start=START, end=end
        )

        results[f"{num_cameras}_cameras"] = {
            "window": {"start": START, "end": end, "rounds": rounds},
            "subset": entry(flat_s, flat, flat_repeats, rounds),
            "cell": entry(cell_s, cell, repeats, rounds, cells=cells),
            "peer": entry(peer_s, peer, repeats, rounds),
            "cell_speedup_vs_subset": round(flat_s / cell_s, 2),
            "peer_speedup_vs_subset": round(flat_s / peer_s, 2),
            "cell_detection_retention_vs_subset": round(
                cell.humans_detected / flat.humans_detected, 4
            ),
            "peer_detection_retention_vs_subset": round(
                peer.humans_detected / flat.humans_detected, 4
            ),
        }

    print(
        json.dumps(
            {
                "description": (
                    "Fleet-scale coordination throughput: flat 'subset' "
                    "(one controller ranks the whole fleet) vs sharded "
                    "'cell' (per-cell controllers under a budget "
                    "coordinator) vs decentralized 'peer' (ring "
                    "negotiation, no controller) on tiled fleets built "
                    "from dataset #1's 4-camera scene.  One round = one "
                    "assessed ground-truth frame (every 25 frames); the "
                    "window shrinks with fleet size so the flat baseline "
                    "stays measurable.  Best-of-N wall clock on a "
                    "single-CPU container.  Flat greedy selection is the "
                    "superlinear term sharding removes -- the cell "
                    "speedup grows from ~2x at 50 cameras to ~100x at "
                    "1000 -- while detection retention stays near 1.0 "
                    "because each cell runs the same greedy protocol "
                    "locally.  Regenerate with "
                    "benchmarks/gen_bench_fleet.py (recipe in "
                    "EXPERIMENTS.md)."
                ),
                "units": "seconds_best_of_n",
                "environment": {
                    "cpus": 1,
                    "note": (
                        "shared single-CPU container; flat subset at "
                        "1000 cameras is a single measurement (~3 min "
                        "per run)"
                    ),
                },
                "budget": 2.0,
                "results": results,
            },
            indent=2,
        )
    )


if __name__ == "__main__":
    main()

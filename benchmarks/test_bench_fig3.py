"""Fig. 3: adaptive algorithm choice versus fixed strategies.

Paper: on datasets #1+#2 combined, the best single fixed algorithm
reaches f_score 0.70 (HOG), while adaptively using HOG on #1 and ACF
on #2 reaches 0.81 — and improves precision and recall
*simultaneously* (fixed HOG: recall 0.71 / precision 0.68; adaptive:
0.73 / 0.91).
"""

from repro.experiments.fig3 import adaptive_vs_fixed
from repro.experiments.tables import format_table


def test_bench_fig3(benchmark, runner_ds1, runner_ds2):
    results = benchmark.pedantic(
        adaptive_vs_fixed, rounds=1, iterations=1
    )
    by_name = {r.strategy: r for r in results}
    print()
    print(format_table(
        ["strategy", "recall", "precision", "f_score", "choices"],
        [
            [r.strategy, r.recall, r.precision, r.f_score,
             str(r.per_dataset)]
            for r in results
        ],
    ))

    adaptive = by_name["adaptive"]
    hog = by_name["HOG"]
    acf = by_name["ACF"]

    # Adaptive picks the paper's winners: HOG on #1, ACF on #2.
    assert adaptive.per_dataset == {1: "HOG", 2: "ACF"}

    # Adaptive f_score beats any fixed strategy.
    assert adaptive.f_score >= hog.f_score
    assert adaptive.f_score >= acf.f_score

    # Both precision and recall improve over fixed HOG (the paper's
    # key observation: false positives AND false negatives drop).
    assert adaptive.precision > hog.precision
    assert adaptive.recall >= hog.recall - 0.05

"""End-to-end round-throughput benchmarks at deployment scale.

Measures full ``DeploymentEngine.run`` rounds (detect -> group ->
select -> fuse over a 500-frame window) on scaled camera rings, the
workload recorded in ``BENCH_scale.json``.  Two kinds of guard:

- A load-independent ratio: the batched serial path is timed
  interleaved with the pinned reference path (per-task
  ``detect_reference`` + unmemoised ``group_reference``) and must beat
  it by ``SCALE_MIN_SPEEDUP``.  Interleaving min-of-N keeps the
  comparison meaningful on noisy shared CI boxes — both paths see the
  same background load.
- An absolute floor in rounds/sec, overridable via the
  ``SCALE_RPS_FLOOR`` environment variable, set well below the numbers
  pinned in ``BENCH_scale.json`` but above the pre-batching seed.

Regenerate BENCH_scale.json with the recipe in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks._bench_util import assert_floor, env_float, timed
from repro.datasets.synthetic import make_scaled_dataset
from repro.detection.base import Detection
from repro.engine.context import DeploymentContext
from repro.engine.core import DeploymentEngine
from repro.engine.executor import DetectionExecutor, make_executor
from repro.reid.matcher import CrossCameraMatcher

NUM_CAMERAS = 16
START, END = 1000, 1500
# Measured ~5x on an unloaded box; 3x leaves headroom for CI noise
# while still failing if the batched path regresses toward the seed.
SCALE_MIN_SPEEDUP = env_float("SCALE_MIN_SPEEDUP", 3.0)
# Seed throughput at 16 cameras was ~2.2 rounds/sec.
SCALE_RPS_FLOOR = env_float("SCALE_RPS_FLOOR", 2.5)


class ReferencePathExecutor(DetectionExecutor):
    """The pre-batching per-task path, kept as the honest baseline:
    every task runs the pinned ``detect_reference`` oracle on its own
    coordinate-seeded generator."""

    name = "reference"
    workers = 1

    def execute(self, batch, detectors) -> list[list[Detection]]:
        return [
            detectors[task.algorithm].detect_reference(
                task.observation, task.make_rng(), task.threshold
            )
            for task in batch.tasks
        ]


@pytest.fixture(scope="module")
def scale_context():
    dataset = make_scaled_dataset(NUM_CAMERAS)
    context = DeploymentContext.build(
        dataset, rng=np.random.default_rng(2018)
    )
    # Pre-render the window so frame caching is excluded from timing.
    dataset.frames(START, END, only_ground_truth=True)
    return context


def _run_once(context, executor=None) -> tuple[float, object]:
    engine = DeploymentEngine(context, seed=2017, executor=executor)
    elapsed, result = timed(
        engine.run, "full", budget=2.0, start=START, end=END
    )
    engine.close()
    return elapsed, result


def test_batched_serial_beats_reference_path(scale_context, monkeypatch):
    """Interleaved min-of-N: batched serial vs the pinned per-task
    reference path, on identical work, under identical load."""
    best_fast = best_ref = float("inf")
    fast_result = ref_result = None
    for _ in range(3):
        elapsed, fast_result = _run_once(scale_context)
        best_fast = min(best_fast, elapsed)
        with monkeypatch.context() as patch:
            patch.setattr(
                CrossCameraMatcher, "group", CrossCameraMatcher.group_reference
            )
            elapsed, ref_result = _run_once(
                scale_context, executor=ReferencePathExecutor()
            )
        best_ref = min(best_ref, elapsed)
    # Same deployment outcome before comparing speed.
    assert fast_result.humans_detected == ref_result.humans_detected
    assert fast_result.decisions == ref_result.decisions
    speedup = best_ref / best_fast
    assert speedup >= SCALE_MIN_SPEEDUP, (
        f"batched serial path is only {speedup:.2f}x the reference path "
        f"(need >= {SCALE_MIN_SPEEDUP}x); ref={best_ref:.3f}s "
        f"fast={best_fast:.3f}s"
    )


def test_serial_throughput_floor(scale_context):
    """Absolute rounds/sec floor at 16 cameras (best-of-5)."""
    best = min(_run_once(scale_context)[0] for _ in range(5))
    assert_floor(
        1.0 / best,
        SCALE_RPS_FLOOR,
        f"16-camera serial rounds/sec (window {START}..{END}, "
        "SCALE_RPS_FLOOR)",
    )


def test_backends_match_serial_at_scale(scale_context):
    """pool and shm reproduce the serial run bit for bit on the
    16-camera ring — the scale benchmark's correctness oracle."""
    _, serial = _run_once(scale_context)
    for backend in ("pool", "shm"):
        executor = make_executor(2, backend=backend)
        _, result = _run_once(scale_context, executor=executor)
        assert vars(result) == vars(serial), backend


def test_bench_scale_json_records_acceptance():
    """BENCH_scale.json pins a >=5x 16-camera serial speedup over the
    seed baseline; keep the recorded evidence self-consistent."""
    path = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    data = json.loads(path.read_text())
    entry = data["results"]["16_cameras"]
    seed = entry["seed_serial_rounds_per_sec"]
    after = entry["serial"]["rounds_per_sec"]
    assert entry["serial_speedup_vs_seed"] >= 5.0
    assert after / seed == pytest.approx(
        entry["serial_speedup_vs_seed"], rel=0.01
    )

"""Extension benchmark: heterogeneous link quality.

The paper's energy constraint is ``c(A_j) + C_j <= B_j`` — the
communication cost ``C_j`` is per camera and "depends on the link
quality from the camera to the central controller" (Section IV).
This bench gives one camera a much weaker link, making its
communication cost comparable to HOG's processing cost: with a tight
budget, EECS must put that camera on the cheap algorithm (or drop it)
while the well-connected cameras keep the accurate one.
"""

import numpy as np

from repro.core.controller import EECSController
from repro.core.selection import AssessmentData
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.experiments.tables import format_table

BUDGET = 2.0
#: The weak camera's per-byte energy multiplier: raises its per-frame
#: communication cost to ~1.17 J, pricing HOG (1.08 J) out of a 2 J
#: budget while ACF (0.07 J) still fits.
WEAK_LINK_QUALITY = 150.0


def run_with_weak_link(runner):
    dataset = runner.dataset
    env = dataset.environment
    weak_camera = dataset.camera_ids[-1]

    controller = EECSController(
        runner.config, runner.library, runner.matcher
    )
    for camera_id in dataset.camera_ids:
        quality = (
            WEAK_LINK_QUALITY if camera_id == weak_camera else 1.0
        )
        controller.register_camera(
            camera_id,
            processing_model=runner.energy_model,
            communication_model=CommunicationEnergyModel(
                width=env.width, height=env.height, link_quality=quality
            ),
            battery=Battery(),
        )
        controller.assign_training_item(camera_id, f"T-{camera_id}")

    # Collect assessment metadata: per camera, every algorithm that
    # fits the budget given ITS link's communication cost.
    records = dataset.frames(1000, 1500, only_ground_truth=True)[:4]
    rng = np.random.default_rng(55)
    assessment = AssessmentData()
    for record in records:
        frame = {}
        for camera_id in dataset.camera_ids:
            item = runner.library.get(f"T-{camera_id}")
            comm = controller.camera(camera_id)
            comm_cost = comm.communication_model.per_frame_cost()
            frame[camera_id] = {}
            for name, profile in item.profiles.items():
                if profile.energy_per_frame + comm_cost > BUDGET:
                    continue
                detections = runner.detectors[name].detect(
                    record.observation(camera_id),
                    rng,
                    threshold=profile.threshold,
                )
                controller.calibrate_probabilities(camera_id, detections)
                frame[camera_id][name] = detections
        assessment.frames.append(frame)

    decision = controller.select(
        assessment,
        enable_subset=False,
        enable_downgrade=False,
        budget_overrides={c: BUDGET for c in dataset.camera_ids},
    )
    return weak_camera, decision


def test_bench_link_quality(benchmark, runner_ds1):
    weak_camera, decision = benchmark.pedantic(
        run_with_weak_link, args=(runner_ds1,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["camera", "link", "assigned algorithm"],
        [
            [
                camera,
                "weak" if camera == weak_camera else "good",
                decision.assignment.get(camera, "(dropped)"),
            ]
            for camera in sorted(
                set(decision.assignment) | {weak_camera}
            )
        ],
    ))

    # Well-connected cameras can afford the accurate algorithm.
    good = [
        algorithm
        for camera, algorithm in decision.assignment.items()
        if camera != weak_camera
    ]
    assert good and all(a == "HOG" for a in good)

    # The weak-link camera cannot: it is either on the cheap
    # algorithm or excluded altogether.
    weak_assignment = decision.assignment.get(weak_camera)
    assert weak_assignment in (None, "ACF")

"""Extension benchmark: EECS after dark (dataset #4).

Beyond the paper's three datasets: on the unlit terrace, gradient- and
contour-based detectors starve while the part-based LSVM degrades
gracefully.  With a generous budget EECS deploys LSVM (the accurate
expensive choice); when the budget drops below LSVM's 3.31 J/frame it
falls back to the best detector it can afford — graceful degradation
along the same axis as Figs. 5a/5b, in a fourth environment.
"""

import numpy as np

from repro.core.runner import SimulationRunner
from repro.datasets.synthetic import make_dataset
from repro.experiments.tables import format_table

HIGH_BUDGET = 6.0   # everything affordable, incl. LSVM (3.31 J)
LOW_BUDGET = 2.0    # HOG (1.08) and ACF (0.07) only


def run_night():
    runner = SimulationRunner(make_dataset(4), seed=404)
    item = runner.library.get(f"T-{runner.dataset.camera_ids[0]}")
    ranking = [p.algorithm for p in item.ranked()]
    results = {
        budget: runner.run(mode="full", budget=budget)
        for budget in (HIGH_BUDGET, LOW_BUDGET)
    }
    return ranking, results


def test_bench_night(benchmark):
    ranking, results = benchmark.pedantic(
        run_night, rounds=1, iterations=1
    )
    print()
    print(f"offline ranking at night: {ranking}")
    rows = []
    for budget, result in results.items():
        algorithms = sorted(
            {a for d in result.decisions for a in d.assignment.values()}
        )
        rows.append([
            budget, result.humans_detected, result.humans_present,
            result.energy_joules, "/".join(algorithms),
        ])
    print(format_table(
        ["budget (J/frame)", "detected", "present", "energy (J)",
         "algorithms used"],
        rows,
    ))

    # The offline ranking reflects the night profiles: LSVM on top.
    assert ranking[0] == "LSVM"

    high = results[HIGH_BUDGET]
    low = results[LOW_BUDGET]

    # With the budget for it, EECS deploys LSVM somewhere.
    high_algorithms = {
        a for d in high.decisions for a in d.assignment.values()
    }
    assert "LSVM" in high_algorithms

    # Without it, LSVM never appears and accuracy drops but stays
    # useful — graceful degradation.
    low_algorithms = {
        a for d in low.decisions for a in d.assignment.values()
    }
    assert "LSVM" not in low_algorithms
    assert low.humans_detected >= 0.3 * high.humans_detected
    assert low.energy_joules < high.energy_joules

"""Ablation: colour verification in cross-camera re-identification.

Section IV-C: colour features "reduce the false matches due to
imperfect homography matching"; the paper reports re-identification
precision above 90% with both cues.  This ablation compares the full
matcher against a homography-only matcher.
"""

import numpy as np

from repro.detection.detectors import make_detector
from repro.experiments.tables import format_table
from repro.reid.matcher import CrossCameraMatcher


def measure_reid(runner, use_color):
    dataset = runner.dataset
    matcher = CrossCameraMatcher(
        dataset.ground_homographies(),
        ground_radius=runner.config.ground_radius_m,
        color_metric=runner.matcher.color_metric if use_color else None,
        color_threshold=runner.config.color_threshold,
        use_color=use_color,
    )
    detector = make_detector("LSVM", dataset.environment)
    rng = np.random.default_rng(99)
    records = dataset.frames(1000, 1800, only_ground_truth=True)
    precisions = []
    merged = 0
    for record in records:
        detections = []
        for camera_id in dataset.camera_ids:
            obs = record.observation(camera_id)
            detections.extend(detector.detect(obs, rng, threshold=-1.2))
        groups = matcher.group(detections)
        precisions.append(matcher.reid_precision(groups))
        merged += sum(1 for g in groups if len(g) > 1)
    return float(np.mean(precisions)), merged


def run_ablation(runner):
    return {
        "homography+color": measure_reid(runner, use_color=True),
        "homography only": measure_reid(runner, use_color=False),
    }


def test_bench_ablation_reid(benchmark, runner_ds1):
    results = benchmark.pedantic(
        run_ablation, args=(runner_ds1,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["matcher", "re-id precision", "multi-view groups"],
        [[name, p, m] for name, (p, m) in results.items()],
    ))

    with_color, _ = results["homography+color"]
    without_color, _ = results["homography only"]

    # The paper's bound: >90% re-identification precision.
    assert with_color > 0.9

    # Colour verification never hurts precision.
    assert with_color >= without_color - 0.02

"""Fig. 6: EECS on dataset #2, where ACF is both best and cheapest.

Paper: EECS detects 1269 humans (~97% of the all-best count) while
consuming 239 J (~70%); it uses 2-3 of the 4 cameras, and algorithm
downgrade contributes nothing because ACF is already the cheapest.
"""

from repro.experiments.fig5 import accuracy_retention, energy_savings
from repro.experiments.fig6 import DEFAULT_BUDGET, run_dataset2
from repro.experiments.tables import format_table


def test_bench_fig6(benchmark, runner_ds2):
    from repro.experiments.fig5 import run_modes

    results = benchmark.pedantic(
        run_modes,
        kwargs=dict(dataset_number=2, budget=DEFAULT_BUDGET,
                    runner=runner_ds2),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ["mode", "detected", "present", "energy (J)", "cameras/round"],
        [
            [r.mode, r.humans_detected, r.humans_present,
             r.energy_joules, str(r.cameras_per_round)]
            for r in results.values()
        ],
    ))
    savings = energy_savings(results)
    retention = accuracy_retention(results)
    print(f"energy vs baseline: {savings}")
    print(f"accuracy vs baseline: {retention}")

    # Only ACF is affordable, so subset and full coincide: downgrade
    # cannot reduce energy further (paper's observation).
    assert abs(
        results["full"].energy_joules - results["subset"].energy_joules
    ) < 0.15 * results["subset"].energy_joules

    # EECS drops cameras in at least some rounds.
    assert min(results["full"].cameras_per_round) <= 3

    # High accuracy retention (paper: ~97%).
    assert retention["full"] >= 0.85

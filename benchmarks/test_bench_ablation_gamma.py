"""Ablation: the gamma accuracy-slack factors.

The paper fixes gamma_n = 0.85 and gamma_p = 0.8 (Section VI-E) and
notes EECS "can be tuned to achieve the right trade-offs".  This
ablation sweeps gamma and traces the energy/accuracy frontier:
tighter requirements keep more cameras and better algorithms (more
energy, more detections); looser ones save energy.
"""

import numpy as np

from repro.core.config import EECSConfig
from repro.core.runner import SimulationRunner
from repro.experiments.tables import format_table

GAMMAS = [(0.95, 0.9), (0.85, 0.8), (0.7, 0.65)]


def sweep_gamma(base_runner):
    rows = []
    for gamma_n, gamma_p in GAMMAS:
        config = EECSConfig(gamma_n=gamma_n, gamma_p=gamma_p)
        runner = SimulationRunner(
            base_runner.dataset,
            config=config,
            detectors=base_runner.detectors,
            library=base_runner.library,
            rng=np.random.default_rng(77),
        )
        result = runner.run(mode="full", budget=2.0)
        rows.append((gamma_n, gamma_p, result))
    return rows


def test_bench_ablation_gamma(benchmark, runner_ds1):
    rows = benchmark.pedantic(
        sweep_gamma, args=(runner_ds1,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["gamma_n", "gamma_p", "detected", "energy (J)", "cameras/round"],
        [
            [gn, gp, r.humans_detected, r.energy_joules,
             str([d.num_active for d in r.decisions])]
            for gn, gp, r in rows
        ],
    ))

    energies = [r.energy_joules for _, _, r in rows]
    detected = [r.humans_detected for _, _, r in rows]

    # Looser slack never costs more energy than the tightest setting.
    assert energies[-1] <= energies[0] + 1e-9

    # Tighter slack never detects fewer humans than the loosest.
    assert detected[0] >= detected[-1] - 10

    # The frontier is non-trivial: the sweep spans a real energy range.
    assert max(energies) > min(energies)

"""Dataset #3 (terrace): the evaluation the paper summarises.

The paper does not tabulate the outdoor terrace ("similar results are
observed in the other dataset"); this bench fills the gap with the
same protocol as Tables II-IV.  The outdoor profile family encodes
clean contours: C4 is the strongest deployable algorithm, ahead of
HOG, with LSVM again best-but-expensive.
"""

from repro.experiments.table2_3_4 import algorithm_table, render_table


def test_bench_terrace(benchmark, runner_ds3):
    rows = benchmark.pedantic(
        algorithm_table,
        kwargs=dict(
            dataset_number=3,
            camera_index=0,
            segment="train",
            dataset=runner_ds3.dataset,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Dataset #3 (terrace, cam 1, train)"))

    by_name = {r.algorithm: r for r in rows}

    # LSVM leads outright; C4's contour cues beat HOG outdoors.
    assert by_name["LSVM"].f_score == max(r.f_score for r in rows)
    assert by_name["C4"].f_score > by_name["ACF"].f_score

    # Energy at 360x288 matches dataset #1's figures (same resolution).
    assert abs(by_name["HOG"].energy_per_frame - 1.08) < 0.05
    assert abs(by_name["ACF"].energy_per_frame - 0.07) < 0.01

    # Accuracy is in a useful range for every algorithm outdoors.
    assert min(r.f_score for r in rows) > 0.4

"""Extension benchmark: fully adaptive selection across an
environment change.

The Fig. 3 benchmark compares strategies at the metric level; this one
runs the *whole* pipeline with nothing pre-assigned: feature upload,
GFK matching against the training library, algorithm transfer, and
deployment — first in the lab, then in the cluttered chap room.
"""

from repro.core.adaptive import AdaptiveDeployment
from repro.experiments.tables import format_table


def run_scenario():
    deployment = AdaptiveDeployment(
        dataset_numbers=(1, 2), window_frames=12, vocabulary_size=250
    )
    return deployment, deployment.run_scenario()


def test_bench_environment_change(benchmark):
    deployment, phases = benchmark.pedantic(
        run_scenario, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["phase", "matched item", "similarity", "algorithm",
         "recall", "precision", "f_score", "energy (J)"],
        [
            [f"dataset #{p.dataset_number}", p.matched_item, p.similarity,
             p.algorithm, p.counts.recall, p.counts.precision,
             p.counts.f_score, p.energy_joules]
            for p in phases
        ],
    ))

    by_dataset = {p.dataset_number: p for p in phases}

    # The GFK match identifies each environment correctly.
    for phase in phases:
        assert phase.correct_match

    # The chap phase deploys ACF (the paper's winner there); the lab
    # phase deploys one of the strong lab algorithms, not ACF.
    assert by_dataset[2].algorithm == "ACF"
    assert by_dataset[1].algorithm in ("HOG", "C4")

    # Phase accuracy stays in a useful band on both environments.
    for phase in phases:
        assert phase.counts.f_score > 0.5

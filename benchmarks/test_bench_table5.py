"""Table V: the 12x12 train-vs-test GFK similarity matrix.

Paper's headline properties, asserted here:

* every test item's most similar training item is the one from the
  same dataset AND the same camera (perfect diagonal dominance — the
  property that makes algorithm transfer work);
* same-dataset blocks are more similar than cross-dataset blocks.

The window size is reduced from the paper's 100 frames to keep the
benchmark runtime modest; the matrix structure is unchanged.
"""

import numpy as np

from repro.experiments.table5 import similarity_matrix
from repro.experiments.tables import format_table


def test_bench_table5(benchmark):
    result = benchmark.pedantic(
        similarity_matrix,
        kwargs=dict(
            window_frames=16,
            repeats=2,
            subspace_dim=8,
            vocabulary_size=300,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    headers = ["train\\test"] + result.labels
    rows = [
        [f"T_{label}"] + [f"{v:.2f}" for v in result.matrix[i]]
        for i, label in enumerate(result.labels)
    ]
    print(format_table(headers, rows))
    print(f"diagonal accuracy: {result.diagonal_accuracy:.2f}")

    # Every test video matches its own training video.
    assert result.diagonal_accuracy == 1.0

    # Diagonal similarity exceeds the matrix mean.
    diag = np.diag(result.matrix)
    off = result.matrix[~np.eye(len(diag), dtype=bool)]
    assert diag.mean() > off.mean()

    # Same-dataset blocks exceed cross-dataset similarity on average.
    blocks = result.block_means()
    same = np.diag(blocks).mean()
    cross = blocks[~np.eye(3, dtype=bool)].mean()
    assert same > cross

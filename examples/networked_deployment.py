"""A full sensor-network deployment over the discrete-event simulator.

Camera sensor nodes and the controller exchange the paper's actual
message types (feature uploads, energy reports, assessment requests,
detection metadata, algorithm assignments) across WiFi links with
finite bandwidth and per-byte radio energy.  The controller runs one
assessment round, decides the camera subset and algorithms, and the
cameras then operate under that assignment — all in simulated time.

Run:  python examples/networked_deployment.py
"""

import zlib

import numpy as np

from repro.core.runner import SimulationRunner
from repro.datasets import make_dataset
from repro.energy.model import ProcessingEnergyModel
from repro.network import (
    CameraSensorNode,
    ControllerNode,
    EventSimulator,
    WirelessLink,
)


def main() -> None:
    print("Preparing dataset #1 and offline training ...")
    dataset = make_dataset(1)
    runner = SimulationRunner(dataset, rng=np.random.default_rng(5))
    env = dataset.environment
    energy_model = ProcessingEnergyModel(width=env.width, height=env.height)

    records = dataset.frames(1000, 2000, only_ground_truth=True)

    sim = EventSimulator()
    controller_node = ControllerNode(
        "controller", runner.controller, assessment_frames=4, budget=2.0
    )
    sim.register_node(controller_node)

    camera_nodes = {}
    thresholds_by_camera = {}
    for camera_id in dataset.camera_ids:
        item = runner.library.get(f"T-{camera_id}")
        thresholds = {
            name: profile.threshold
            for name, profile in item.profiles.items()
        }
        thresholds_by_camera[camera_id] = thresholds
        node = CameraSensorNode(
            node_id=camera_id,
            controller_id="controller",
            observations=[r.observation(camera_id) for r in records],
            detectors=runner.detectors,
            thresholds=thresholds,
            energy_model=energy_model,
            rng=np.random.default_rng(abs(zlib.crc32(camera_id.encode()))),
        )
        camera_nodes[camera_id] = node
        sim.register_node(node)
        sim.connect(
            camera_id,
            "controller",
            WirelessLink(bandwidth_bps=20e6, latency_s=0.004),
        )

    print("Startup: energy reports ...")
    for node in camera_nodes.values():
        node.start()
    sim.run()

    print("Assessment round: all affordable algorithms (budget 2 J) ...")
    budget = 2.0
    camera_algorithms = {}
    for camera_id in dataset.camera_ids:
        item = runner.library.get(f"T-{camera_id}")
        camera_algorithms[camera_id] = [
            p.algorithm
            for p in item.profiles.values()
            if p.energy_per_frame <= budget
        ]
    controller_node.start_assessment(camera_algorithms)
    sim.run()

    decision = controller_node.decisions[-1]
    print(f"  decision: {decision.assignment}")
    print(
        f"  baseline N*={decision.baseline.num_objects:.0f}, "
        f"P*={decision.baseline.mean_probability:.2f}; "
        f"achieved N={decision.achieved.num_objects:.0f}, "
        f"P={decision.achieved.mean_probability:.2f}"
    )

    print("Operation: 12 frames under the assignment ...")
    for _ in range(12):
        for node in camera_nodes.values():
            node.process_next_frame()
    sim.run()

    print()
    print(f"simulated time: {sim.now:.3f} s")
    print(f"messages delivered: {sim.delivered_messages}")
    print(f"bytes transferred: {sim.transferred_bytes}")
    for camera_id, node in camera_nodes.items():
        role = decision.assignment.get(camera_id, "idle")
        print(
            f"  {camera_id}: algorithm={role}, frames={node.frames_processed}, "
            f"battery drawn={node.battery.consumed:.1f} J"
        )


if __name__ == "__main__":
    main()

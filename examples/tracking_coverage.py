"""Track-level coverage: recovering misses across frames.

Section VII of the paper argues that EECS can tolerate per-frame
misses because "objects that are not detected in some frames are
likely to be detected at other frames".  This example quantifies that:
it runs an energy-saving EECS deployment, feeds the fused detections
into a ground-plane Kalman tracker, and compares frame-level detection
rate against track-level coverage (the fraction of people covered by
a confirmed track at each frame).

Run:  python examples/tracking_coverage.py
"""

import numpy as np

from repro.core import SimulationRunner
from repro.datasets import make_dataset
from repro.datasets.groundtruth import persons_in_any_view
from repro.experiments.tables import format_table
from repro.tracking import GroundPlaneTracker


def main() -> None:
    print("Offline training on dataset #1 ...")
    dataset = make_dataset(1)
    runner = SimulationRunner(dataset, seed=2017)

    # Deploy the cheap configuration: 2 cameras on ACF -- lots of
    # per-frame misses, ideal to show what tracking recovers.
    cams = dataset.camera_ids
    assignment = {cams[0]: "ACF", cams[1]: "ACF"}
    records = dataset.frames(1000, 3000, only_ground_truth=True)

    tracker = GroundPlaneTracker(
        dt=1.0, gate=4.0, confirm_hits=2, max_misses=3
    )
    rng = np.random.default_rng(3)

    frame_hits = 0
    track_hits = 0
    present_total = 0
    for record in records:
        detections = []
        for camera_id, algorithm in assignment.items():
            item = runner.library.get(f"T-{camera_id}")
            threshold = item.profile(algorithm).threshold
            obs = record.observation(camera_id)
            dets = runner.detectors[algorithm].detect(
                obs, rng, threshold=threshold
            )
            runner.controller.calibrate_probabilities(camera_id, dets)
            detections.extend(dets)
        groups = runner.matcher.group(detections)
        tracker.step(groups)

        present = persons_in_any_view(record.observations)
        detected_now = {
            g.majority_truth_id for g in groups if g.is_true_object
        }
        covered = tracker.tracked_truth_ids()
        frame_hits += len(detected_now & present)
        track_hits += len(covered & present)
        present_total += len(present)

    print()
    print(format_table(
        ["metric", "covered", "of", "rate"],
        [
            ["frame-level detections", frame_hits, present_total,
             f"{frame_hits / present_total:.0%}"],
            ["track-level coverage", track_hits, present_total,
             f"{track_hits / present_total:.0%}"],
        ],
    ))
    print(
        "\nTracks bridge the frames in which the cheap detector missed "
        "a person, recovering coverage without any extra detection "
        "energy -- the Section VII argument, quantified."
    )
    print(f"tracks spawned over the run: {len(tracker.all_tracks_ever)}")


if __name__ == "__main__":
    main()

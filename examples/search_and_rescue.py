"""Search-and-rescue scenario on the outdoor "terrace" dataset.

The paper's motivating deployment: battery-operated cameras watching
a disaster-recovery area for humans in distress.  This example gives
each camera a small battery, derives per-frame budgets from the
required operation time (as in Section VI), and shows how EECS
stretches network lifetime: per-round decisions, battery drain and
the humans detected along the way.

Run:  python examples/search_and_rescue.py
"""

import numpy as np

from repro.core import EECSConfig, SimulationRunner
from repro.datasets import make_dataset
from repro.energy.battery import Battery
from repro.experiments.tables import format_table


def run_mission(runner: SimulationRunner, mode: str, budget: float):
    result = runner.run(mode=mode, budget=budget)
    return result


def main() -> None:
    print("Deploying 4 cameras over the terrace (outdoor, 8 people) ...")
    dataset = make_dataset(3)
    config = EECSConfig(gamma_n=0.85, gamma_p=0.8)
    runner = SimulationRunner(
        dataset, config=config, rng=np.random.default_rng(42)
    )

    # Mission: 6 hours, one processed frame every 2 seconds, a 2000 J
    # battery reserve earmarked for detection workloads.
    reserve = Battery(capacity_joules=2000.0)
    budget = reserve.budget_for(
        operation_time_s=config.operation_time_s,
        seconds_per_frame=config.seconds_per_frame,
    )
    print(
        f"Per-frame budget from the {reserve.capacity_joules:.0f} J "
        f"reserve over 6 h at 0.5 fps: {budget:.3f} J/frame"
    )

    rows = []
    for mode in ("all_best", "full"):
        result = run_mission(runner, mode, budget=max(budget, 0.5))
        rounds = [d.num_active for d in result.decisions]
        rows.append([
            mode,
            result.humans_detected,
            f"{result.detection_rate:.0%}",
            result.energy_joules,
            str(rounds) if rounds else "n/a (static)",
        ])
    print()
    print(format_table(
        ["mode", "humans detected", "detection rate",
         "energy (J)", "cameras per round"],
        rows,
    ))

    base, eecs = rows[0], rows[1]
    saving = 1.0 - eecs[3] / base[3]
    print()
    print(
        f"EECS extends the mission: {saving:.0%} less energy per round "
        f"of coverage, i.e. roughly {1 / (1 - saving):.2f}x the lifetime "
        f"on the same batteries."
    )


if __name__ == "__main__":
    main()

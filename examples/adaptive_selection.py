"""Domain adaptation in action: matching unknown feeds to training items.

A camera wakes up in an unknown environment, extracts HOG ++ BoW
features from a short clip, and uploads them to the controller.  The
controller compares the clip against its training library on the
Grassmann manifold (Eqs. 1-5) and picks the detection algorithm that
worked best on the closest match — without ever seeing ground truth
for the new feed.

This example builds a small training library from datasets #1 and #2,
then feeds it test clips from both and shows the similarity scores and
the resulting algorithm choices.

Run:  python examples/adaptive_selection.py
"""

import numpy as np

from repro.datasets import make_dataset
from repro.domain_adaptation import VideoComparator
from repro.experiments.table2_3_4 import algorithm_table
from repro.experiments.tables import format_table
from repro.vision.bow import BagOfWords
from repro.vision.features import FrameFeatureExtractor
from repro.vision.keypoints import extract_descriptors

WINDOW = 12  # frames per clip (the paper uses 100)


def sample_images(dataset, camera_id, start, end, count):
    step = max(1, (end - start) // count)
    records = dataset.frames(start, start + step * count, step=step)
    return [r.observation(camera_id).image for r in records]


def main() -> None:
    datasets = {1: make_dataset(1), 2: make_dataset(2)}
    for ds in datasets.values():
        ds.cache_frames = False

    print("Building the 400-word visual vocabulary ...")
    descriptors = []
    for ds in datasets.values():
        for camera_id in ds.camera_ids[:2]:
            for image in sample_images(ds, camera_id, 0, 1000, 6):
                d = extract_descriptors(image)
                if len(d):
                    descriptors.append(d)
    bow = BagOfWords(vocabulary_size=400, rng=np.random.default_rng(0))
    bow.fit(np.vstack(descriptors))
    extractor = FrameFeatureExtractor(bow)

    print("Registering training clips (frames 0-1000) ...")
    comparator = VideoComparator(subspace_dim=8)
    best_algorithm = {}
    for number, ds in datasets.items():
        rows = algorithm_table(number, camera_index=0, segment="train",
                               dataset=ds)
        deployable = [r for r in rows if r.algorithm != "LSVM"]
        name = f"T_{number}.1"
        best_algorithm[name] = max(deployable, key=lambda r: r.f_score)
        images = sample_images(ds, ds.camera_ids[0], 0, 1000, WINDOW)
        comparator.add_training_video(name, extractor.extract_video(images))

    print("Matching unknown test clips (frames 1000+) ...\n")
    rows = []
    for number, ds in datasets.items():
        images = sample_images(ds, ds.camera_ids[0], 1200, 2800, WINDOW)
        features = extractor.extract_video(images)
        sims = comparator.similarities(features)
        match, score = comparator.best_match(features)
        chosen = best_algorithm[match]
        rows.append([
            f"V_{number}.1",
            " ".join(f"{k}={v:.2f}" for k, v in sorted(sims.items())),
            match,
            chosen.algorithm,
            chosen.f_score,
        ])
    print(format_table(
        ["test clip", "similarities", "matched item",
         "chosen algorithm", "expected f_score"],
        rows,
    ))
    print(
        "\nEach test clip matches the training item from its own "
        "environment, so the controller assigns HOG to the lab feed "
        "and ACF to the cluttered chap feed -- the paper's Fig. 3 "
        "adaptive behaviour."
    )


if __name__ == "__main__":
    main()

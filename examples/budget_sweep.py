"""Energy/accuracy frontier: sweeping the per-frame energy budget.

The paper evaluates two budget regimes (Figs. 5a/5b); this example
sweeps a whole range.  As the budget shrinks, the set of affordable
algorithms contracts (LSVM -> C4 -> HOG -> ACF on dataset #1) and
EECS degrades gracefully: fewer cameras, cheaper algorithms, lower —
but bounded — accuracy.

Run:  python examples/budget_sweep.py
"""

import numpy as np

from repro.core import SimulationRunner
from repro.datasets import make_dataset
from repro.experiments.tables import format_table


def main() -> None:
    print("Offline training on dataset #1 ...")
    runner = SimulationRunner(make_dataset(1), rng=np.random.default_rng(9))

    budgets = [6.0, 3.5, 2.0, 1.0, 0.5, 0.1]
    rows = []
    for budget in budgets:
        try:
            result = runner.run(mode="full", budget=budget)
        except RuntimeError as exc:
            rows.append([budget, "-", "-", "-", f"infeasible: {exc}"])
            continue
        cameras = [d.num_active for d in result.decisions]
        algorithms = sorted(
            {a for d in result.decisions for a in d.assignment.values()}
        )
        rows.append([
            budget,
            result.humans_detected,
            f"{result.detection_rate:.0%}",
            result.energy_joules,
            f"cams={cameras} algs={'/'.join(algorithms)}",
        ])

    print()
    print(format_table(
        ["budget (J/frame)", "humans detected", "rate", "energy (J)",
         "EECS choices"],
        rows,
    ))
    print(
        "\nAs the budget drops below each algorithm's per-frame cost "
        "(LSVM 3.31 J, HOG 1.08 J, ACF 0.07 J at 360x288), EECS falls "
        "back to cheaper detectors and fewer cameras instead of dying."
    )


if __name__ == "__main__":
    main()

"""The real pixel-level detectors, end to end.

The EECS evaluation uses calibrated detector simulations so the
paper's measured operating points are reproduced exactly.  This
example shows the substrate is genuinely buildable: a from-scratch
Dalal-Triggs sliding-window HOG detector (dense block grids, a
ridge-trained linear template, an upscaling pyramid, NMS) and an
ACF-style boosted channel-features detector are trained on rendered
frames of dataset #1 and evaluated on the test segment, next to the
calibrated HOG simulation.  Note the wall-time ratio between the two
real detectors — the same order of magnitude as the paper's measured
1.5 s (HOG) versus 0.1 s (ACF) per frame.

Run:  python examples/real_detector.py
"""

import time

import numpy as np

from repro.datasets import make_dataset
from repro.datasets.groundtruth import ground_truth_boxes
from repro.detection import best_threshold, make_detector
from repro.detection.channel_detector import ChannelFeatureDetector
from repro.detection.contour_detector import ContourDetector
from repro.detection.parts_detector import PartBasedDetector
from repro.detection.window_detector import SlidingWindowHogDetector
from repro.experiments.tables import format_table


def main() -> None:
    dataset = make_dataset(1)
    rng = np.random.default_rng(5)
    camera_id = dataset.camera_ids[0]

    print("Collecting training crops from frames 0-500 ...")
    train_obs = []
    for record in dataset.frames(0, 500, only_ground_truth=True):
        for cam in dataset.camera_ids[:2]:
            train_obs.append(record.observations[cam])

    t0 = time.time()
    real_hog = SlidingWindowHogDetector.train(train_obs, rng)
    print(f"trained the linear HOG template in {time.time() - t0:.1f} s")
    t0 = time.time()
    real_acf = ChannelFeatureDetector.train(train_obs, rng)
    print(f"trained the boosted ACF classifier in {time.time() - t0:.1f} s")
    t0 = time.time()
    real_lsvm = PartBasedDetector.train(train_obs, rng)
    print(f"trained the part-based detector in {time.time() - t0:.1f} s")
    real_c4 = ContourDetector()  # template-only, nothing to train

    print("Evaluating on the test segment (frames 1000-2000) ...")
    rows = []
    for name, detector, floor in [
        ("HOG (sliding window, real pixels)", real_hog, -0.8),
        ("ACF (boosted channels, real pixels)", real_acf, -5.0),
        ("C4 (chamfer contours, real pixels)", real_c4, -2.5),
        ("LSVM (root+parts, real pixels)", real_lsvm, -1.2),
        ("HOG (calibrated simulation)",
         make_detector("HOG", dataset.environment), None),
    ]:
        frames = []
        t0 = time.time()
        for record in dataset.frames(1000, 2000, only_ground_truth=True):
            obs = record.observation(camera_id)
            detections = detector.detect(obs, rng, threshold=floor)
            frames.append((detections, ground_truth_boxes(obs)))
        elapsed = time.time() - t0
        threshold, counts = best_threshold(frames)
        rows.append([
            name, f"{threshold:.2f}", f"{counts.recall:.2f}",
            f"{counts.precision:.2f}", f"{counts.f_score:.2f}",
            f"{elapsed:.1f}s",
        ])

    print()
    print(format_table(
        ["detector", "best thr", "recall", "precision", "f_score",
         "wall time"],
        rows,
    ))
    print(
        "\nAll four of the paper's algorithm families run for real on "
        "pixels; the calibrated simulation reproduces the paper's "
        "smartphone operating point.  Note the accuracy ordering "
        "(LSVM best, then HOG) and the ACF speed advantage -- both "
        "match Tables II-IV.  EECS treats every variant identically: "
        "scored boxes in, coordination out."
    )


if __name__ == "__main__":
    main()

"""Night watch: EECS adapts to a fourth environment the paper never saw.

The terrace after dark (dataset #4, an extension of this reproduction)
starves gradient- and contour-based detectors; only the part-based
LSVM keeps working.  EECS's offline training discovers this by itself
— the night ranking inverts the daytime one — and the budget then
decides whether the network can afford night vision:

* a generous budget deploys LSVM (expensive but robust at night);
* a tight budget falls back to HOG/ACF and accepts the accuracy loss.

The example also shows the latency angle: LSVM at ~6.3 s/frame cannot
keep the paper's one-frame-per-2-s cadence, so a real deployment
would also have to drop its frame rate at night.

Run:  python examples/night_watch.py
"""

from repro.core import SimulationRunner
from repro.datasets import make_dataset
from repro.experiments.tables import format_table


def main() -> None:
    print("Offline training: terrace by day (#3) and by night (#4) ...")
    day = SimulationRunner(make_dataset(3), seed=33)
    night = SimulationRunner(make_dataset(4), seed=44)

    print("\nOffline algorithm rankings (camera 1):")
    for label, runner in (("day", day), ("night", night)):
        item = runner.library.get(f"T-{runner.dataset.camera_ids[0]}")
        ranked = [
            f"{p.algorithm}({p.f_score:.2f})" for p in item.ranked()
        ]
        print(f"  {label:5s}: {' > '.join(ranked)}")

    print("\nNight deployments under two budgets:")
    rows = []
    for budget in (6.0, 2.0):
        result = night.run(mode="full", budget=budget)
        algorithms = sorted(
            {a for d in result.decisions for a in d.assignment.values()}
        )
        rows.append([
            budget,
            result.humans_detected,
            result.humans_present,
            result.energy_joules,
            "/".join(algorithms),
            f"{result.max_latency_per_frame():.1f}s",
        ])
    print(format_table(
        ["budget (J/frame)", "detected", "present", "energy (J)",
         "algorithms", "latency/frame"],
        rows,
    ))
    print(
        "\nWith 6 J/frame the controller buys LSVM's night robustness; "
        "at 2 J/frame it degrades gracefully to the best daylight "
        "algorithms it can afford.  Note the latency column: LSVM "
        "overruns the 2 s processing cadence, so night vision also "
        "costs frame rate."
    )


if __name__ == "__main__":
    main()

"""Quickstart: EECS on the synthetic "lab" dataset.

Builds dataset #1 (four overlapping cameras, six pedestrians), trains
the controller offline, then compares three deployment modes over the
test segment: the all-best baseline, EECS camera-subset selection, and
full EECS with algorithm downgrade.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SimulationRunner
from repro.datasets import make_dataset
from repro.experiments.tables import format_table


def main() -> None:
    print("Building dataset #1 (lab: indoor, 6 people, 360x288) ...")
    dataset = make_dataset(1)

    print("Offline training: profiling 4 algorithms x 4 cameras ...")
    runner = SimulationRunner(dataset, rng=np.random.default_rng(2017))

    # Per-frame energy budget of 2 J: HOG (1.08 J/frame) is affordable,
    # C4 (4.92) and LSVM (3.31) are not -- the paper's Fig. 5a regime.
    budget = 2.0
    rows = []
    baseline_energy = None
    baseline_detected = None
    for mode in ("all_best", "subset", "full"):
        result = runner.run(mode=mode, budget=budget)
        if mode == "all_best":
            baseline_energy = result.energy_joules
            baseline_detected = result.humans_detected
        rows.append([
            mode,
            result.humans_detected,
            result.humans_present,
            result.energy_joules,
            result.energy_joules / baseline_energy,
            result.humans_detected / baseline_detected,
        ])

    print()
    print(format_table(
        ["mode", "detected", "present", "energy (J)",
         "energy vs baseline", "accuracy vs baseline"],
        rows,
    ))
    print()
    full = rows[-1]
    print(
        f"Full EECS used {full[4]:.0%} of the baseline energy while "
        f"keeping {full[5]:.0%} of its detections."
    )


if __name__ == "__main__":
    main()

"""Integration tests for the deployment runner (shares the session
runner fixture to amortise offline training)."""

import pytest

from repro.core.runner import build_training_library
from repro.detection.detectors import ALGORITHM_NAMES


class TestOfflineTraining:
    def test_library_covers_all_cameras(self, runner1, dataset1):
        for camera_id in dataset1.camera_ids:
            item = runner1.library.get(f"T-{camera_id}")
            assert set(item.profiles) == set(ALGORITHM_NAMES)

    def test_profiles_have_energy_from_model(self, runner1, dataset1):
        item = runner1.library.get(f"T-{dataset1.camera_ids[0]}")
        assert item.profile("HOG").energy_per_frame == pytest.approx(
            1.08, rel=0.02
        )

    def test_hog_beats_acf_on_lab(self, runner1, dataset1):
        """Dataset #1's deployable ranking: HOG above ACF (Table II)."""
        item = runner1.library.get(f"T-{dataset1.camera_ids[0]}")
        assert item.profile("HOG").f_score > item.profile("ACF").f_score


class TestRunModes:
    @pytest.fixture(scope="class")
    def results(self, runner1):
        return {
            mode: runner1.run(mode=mode, budget=2.0, start=1000, end=2000)
            for mode in ("all_best", "subset", "full")
        }

    def test_modes_consume_decreasing_energy(self, results):
        assert (
            results["full"].energy_joules
            < results["all_best"].energy_joules
        )

    def test_accuracy_retention_bound(self, results):
        """EECS keeps >= 75% of the baseline's detections (the paper's
        slack is gamma_n = 0.85 on the proxy metric)."""
        baseline = results["all_best"].humans_detected
        assert results["full"].humans_detected >= 0.75 * baseline

    def test_decisions_recorded_for_eecs_modes(self, results):
        assert results["all_best"].decisions == []
        assert len(results["full"].decisions) >= 1

    def test_energy_by_camera_sums_to_total(self, results):
        result = results["full"]
        assert sum(result.energy_by_camera.values()) == pytest.approx(
            result.energy_joules
        )

    def test_processing_plus_communication(self, results):
        result = results["all_best"]
        assert (
            result.processing_joules + result.communication_joules
            == pytest.approx(result.energy_joules)
        )

    def test_detection_rate_bounds(self, results):
        for result in results.values():
            assert 0.0 <= result.detection_rate <= 1.0

    def test_frames_evaluated(self, results):
        # Frames 1000..2000 with ground truth every 25 -> 40 frames.
        assert results["all_best"].frames_evaluated == 40


class TestFixedMode:
    def test_fixed_assignment_runs(self, runner1, dataset1):
        c1, c2 = dataset1.camera_ids[:2]
        result = runner1.run(
            mode="fixed",
            assignment={c1: "HOG", c2: "ACF"},
            start=1000,
            end=1500,
        )
        assert result.humans_detected > 0
        assert set(result.energy_by_camera) == {c1, c2}

    def test_fixed_needs_assignment(self, runner1):
        with pytest.raises(ValueError):
            runner1.run(mode="fixed")

    def test_unknown_mode_rejected(self, runner1):
        with pytest.raises(ValueError):
            runner1.run(mode="warp")

    def test_more_cameras_detect_more(self, runner1, dataset1):
        cams = dataset1.camera_ids
        two = runner1.run(
            mode="fixed",
            assignment={c: "HOG" for c in cams[:2]},
            start=1000,
            end=1600,
        )
        four = runner1.run(
            mode="fixed",
            assignment={c: "HOG" for c in cams},
            start=1000,
            end=1600,
        )
        assert four.humans_detected >= two.humans_detected
        assert four.energy_joules > two.energy_joules


class TestLowBudget:
    def test_only_acf_affordable(self, runner1):
        """Fig. 5b regime: with budget 0.5 only ACF runs."""
        result = runner1.run(mode="full", budget=0.5, start=1000, end=2000)
        for decision in result.decisions:
            assert set(decision.assignment.values()) == {"ACF"}

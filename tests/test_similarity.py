"""Tests for GFK video similarity (Eqs. 3-5) and the comparator."""

import numpy as np
import pytest

from repro.domain_adaptation.gfk import geodesic_flow_kernel
from repro.domain_adaptation.manifold import orthonormalize
from repro.domain_adaptation.similarity import (
    VideoComparator,
    kernel_distance_matrix,
    mean_manifold_distance,
    video_similarity,
)


def make_video(rng, mean, k=12, alpha=40, spread=0.3):
    """Frame features around a shared 'background' mean."""
    return mean + spread * rng.normal(size=(k, alpha))


class TestKernelDistance:
    def _kernel(self, rng, alpha=20, beta=3):
        x = orthonormalize(rng.normal(size=(alpha, beta)))
        z = orthonormalize(rng.normal(size=(alpha, beta)))
        return geodesic_flow_kernel(x, z)

    def test_shape(self, rng):
        kernel = self._kernel(rng)
        t = rng.normal(size=(4, 20))
        v = rng.normal(size=(7, 20))
        assert kernel_distance_matrix(kernel, t, v).shape == (4, 7)

    def test_non_negative(self, rng):
        kernel = self._kernel(rng)
        t = rng.normal(size=(5, 20))
        v = rng.normal(size=(5, 20))
        assert kernel_distance_matrix(kernel, t, v).min() >= 0.0

    def test_zero_on_identical_frames(self, rng):
        kernel = self._kernel(rng)
        t = rng.normal(size=(3, 20))
        d = kernel_distance_matrix(kernel, t, t)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    def test_mean_distance_is_mean(self, rng):
        kernel = self._kernel(rng)
        t = rng.normal(size=(3, 20))
        v = rng.normal(size=(4, 20))
        assert mean_manifold_distance(kernel, t, v) == pytest.approx(
            kernel_distance_matrix(kernel, t, v).mean()
        )


class TestVideoSimilarity:
    def test_in_unit_interval(self, rng):
        a = make_video(rng, rng.normal(size=40))
        b = make_video(rng, rng.normal(size=40))
        sim = video_similarity(a, b, subspace_dim=4)
        assert 0.0 < sim <= 1.0

    def test_self_similarity_highest(self, rng):
        mean_a = rng.normal(size=40) * 3
        mean_b = rng.normal(size=40) * 3
        a1 = make_video(rng, mean_a)
        a2 = make_video(rng, mean_a)
        b = make_video(rng, mean_b)
        assert video_similarity(a1, a2, subspace_dim=4) > video_similarity(
            a1, b, subspace_dim=4
        )

    def test_symmetric(self, rng):
        a = make_video(rng, rng.normal(size=30), alpha=30)
        b = make_video(rng, rng.normal(size=30), alpha=30)
        s_ab = video_similarity(a, b, subspace_dim=4)
        s_ba = video_similarity(b, a, subspace_dim=4)
        assert s_ab == pytest.approx(s_ba, abs=1e-6)

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            video_similarity(
                rng.normal(size=(5, 10)), rng.normal(size=(5, 12))
            )

    def test_distance_scale_monotone(self, rng):
        a = make_video(rng, rng.normal(size=40))
        b = make_video(rng, rng.normal(size=40))
        s_small = video_similarity(a, b, subspace_dim=4, distance_scale=1.0)
        s_large = video_similarity(a, b, subspace_dim=4, distance_scale=20.0)
        assert s_large <= s_small


class TestVideoComparator:
    def test_best_match_finds_same_scene(self, rng):
        means = [rng.normal(size=50) * 3 for _ in range(3)]
        comparator = VideoComparator(subspace_dim=4)
        for i, mean in enumerate(means):
            comparator.add_training_video(
                f"T{i}", make_video(rng, mean, alpha=50)
            )
        incoming = make_video(rng, means[1], alpha=50)
        name, similarity = comparator.best_match(incoming)
        assert name == "T1"
        assert 0.0 < similarity <= 1.0

    def test_similarities_cover_all_items(self, rng):
        comparator = VideoComparator(subspace_dim=3)
        comparator.add_training_video("A", rng.normal(size=(8, 30)))
        comparator.add_training_video("B", rng.normal(size=(8, 30)))
        sims = comparator.similarities(rng.normal(size=(8, 30)))
        assert set(sims) == {"A", "B"}

    def test_duplicate_name_rejected(self, rng):
        comparator = VideoComparator()
        comparator.add_training_video("A", rng.normal(size=(5, 20)))
        with pytest.raises(ValueError):
            comparator.add_training_video("A", rng.normal(size=(5, 20)))

    def test_empty_library_raises(self, rng):
        with pytest.raises(RuntimeError):
            VideoComparator().similarities(rng.normal(size=(5, 20)))

"""Tests for the Kalman filter and ground-plane tracker."""

import numpy as np
import pytest

from repro.reid.fusion import ObjectGroup
from repro.tracking.kalman import KalmanFilter2D
from repro.tracking.tracker import GroundPlaneTracker


class TestKalmanFilter:
    def test_stationary_object_converges(self):
        kf = KalmanFilter2D(np.array([1.0, 2.0]))
        for _ in range(20):
            kf.predict()
            kf.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(kf.position, [1.0, 2.0], atol=0.05)
        np.testing.assert_allclose(kf.velocity, [0.0, 0.0], atol=0.05)

    def test_constant_velocity_estimated(self):
        kf = KalmanFilter2D(np.array([0.0, 0.0]), dt=1.0)
        for t in range(1, 25):
            kf.predict()
            kf.update(np.array([0.5 * t, -0.25 * t]))
        np.testing.assert_allclose(kf.velocity, [0.5, -0.25], atol=0.05)

    def test_prediction_extrapolates(self):
        kf = KalmanFilter2D(np.array([0.0, 0.0]), dt=1.0)
        for t in range(1, 15):
            kf.predict()
            kf.update(np.array([1.0 * t, 0.0]))
        predicted = kf.predict()
        assert predicted[0] == pytest.approx(15.0, abs=0.5)

    def test_uncertainty_shrinks_with_updates(self):
        kf = KalmanFilter2D(np.array([0.0, 0.0]))
        kf.predict()
        before = kf.position_uncertainty()
        kf.update(np.array([0.0, 0.0]))
        assert kf.position_uncertainty() < before

    def test_uncertainty_grows_without_updates(self):
        kf = KalmanFilter2D(np.array([0.0, 0.0]))
        kf.predict()
        kf.update(np.array([0.0, 0.0]))
        after_update = kf.position_uncertainty()
        for _ in range(5):
            kf.predict()
        assert kf.position_uncertainty() > after_update

    def test_gating_distance_small_for_consistent(self):
        kf = KalmanFilter2D(np.array([3.0, 3.0]))
        kf.predict()
        assert kf.gating_distance(np.array([3.0, 3.0])) < 1.0
        assert kf.gating_distance(np.array([30.0, 30.0])) > 10.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            KalmanFilter2D(np.zeros(3))
        with pytest.raises(ValueError):
            KalmanFilter2D(np.zeros(2), dt=0)
        kf = KalmanFilter2D(np.zeros(2))
        with pytest.raises(ValueError):
            kf.update(np.zeros(3))


def group_at(x, y, truth_id=None):
    return ObjectGroup(detections=[], ground_point=(x, y)) if truth_id is None else _group_with_truth(x, y, truth_id)


def _group_with_truth(x, y, truth_id):
    from repro.detection.base import BoundingBox, Detection

    det = Detection(
        bbox=BoundingBox(0, 0, 1, 1),
        score=0.9,
        camera_id="c",
        frame_index=0,
        algorithm="HOG",
        probability=0.9,
        truth_id=truth_id,
    )
    return ObjectGroup(detections=[det], ground_point=(x, y))


class TestGroundPlaneTracker:
    def test_track_confirmed_after_hits(self):
        tracker = GroundPlaneTracker(confirm_hits=2)
        tracker.step([group_at(1.0, 1.0)])
        assert tracker.confirmed_tracks == []
        tracker.step([group_at(1.05, 1.0)])
        assert len(tracker.confirmed_tracks) == 1

    def test_two_objects_two_tracks(self):
        tracker = GroundPlaneTracker(confirm_hits=1)
        tracker.step([group_at(0.0, 0.0), group_at(5.0, 5.0)])
        tracker.step([group_at(0.1, 0.0), group_at(5.1, 5.0)])
        assert len(tracker.tracks) == 2

    def test_track_survives_missed_frames(self):
        tracker = GroundPlaneTracker(confirm_hits=1, max_misses=3)
        tracker.step([group_at(1.0, 1.0)])
        track_id = tracker.tracks[0].track_id
        tracker.step([])  # miss
        tracker.step([])  # miss
        tracker.step([group_at(1.1, 1.0)])
        assert any(t.track_id == track_id for t in tracker.tracks)

    def test_track_retired_after_too_many_misses(self):
        tracker = GroundPlaneTracker(confirm_hits=1, max_misses=1)
        tracker.step([group_at(1.0, 1.0)])
        tracker.step([])
        tracker.step([])
        assert tracker.tracks == []
        assert len(tracker.retired) == 1

    def test_moving_object_followed(self):
        tracker = GroundPlaneTracker(confirm_hits=1, gate=5.0)
        for t in range(10):
            tracker.step([group_at(0.3 * t, 0.0)])
        assert len(tracker.tracks) == 1
        assert tracker.tracks[0].hits == 10

    def test_distant_measurement_spawns_new_track(self):
        tracker = GroundPlaneTracker(confirm_hits=1, gate=2.0)
        tracker.step([group_at(0.0, 0.0)])
        tracker.step([group_at(50.0, 50.0)])
        assert len(tracker.tracks) == 2

    def test_truth_ids_recorded(self):
        tracker = GroundPlaneTracker(confirm_hits=1)
        tracker.step([group_at(1.0, 1.0, truth_id=7)])
        tracker.step([group_at(1.1, 1.0, truth_id=7)])
        assert tracker.tracked_truth_ids() == {7}
        assert tracker.tracks[0].majority_truth_id == 7

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GroundPlaneTracker(confirm_hits=0)
        with pytest.raises(ValueError):
            GroundPlaneTracker(max_misses=-1)

    def test_bridges_detection_gap(self):
        """The Section VII story: a person missed for two frames keeps
        their track, so track-level coverage exceeds frame-level."""
        tracker = GroundPlaneTracker(confirm_hits=1, max_misses=3, gate=5.0)
        positions = [(0.2 * t, 0.0) for t in range(12)]
        detected_frames = 0
        for t, (x, y) in enumerate(positions):
            if t in (4, 5):  # two missed frames
                tracker.step([])
            else:
                detected_frames += 1
                tracker.step([group_at(x, y, truth_id=1)])
        assert len(tracker.all_tracks_ever) == 1
        assert tracker.tracks[0].hits == detected_frames

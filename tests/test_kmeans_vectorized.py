"""Vectorised k-means vs the reference per-centroid loop."""

import numpy as np

from repro.vision.kmeans import KMeans


class TestUpdateEquivalence:
    def test_single_update_matches_reference(self, rng):
        data = rng.normal(size=(2000, 16))
        km = KMeans(40)
        centroids = data[:40].copy()
        labels = km._assign(data, centroids)
        fast = km._update_centroids(data, labels, centroids)
        slow = km._update_centroids_reference(data, labels, centroids)
        np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)

    def test_empty_clusters_keep_centroid(self, rng):
        data = rng.normal(size=(30, 4))
        km = KMeans(8)
        centroids = rng.normal(size=(8, 4)) + 100.0  # far away: all empty
        centroids[0] = data.mean(axis=0)  # only cluster 0 gets members
        labels = km._assign(data, centroids)
        fast = km._update_centroids(data, labels, centroids)
        slow = km._update_centroids_reference(data, labels, centroids)
        np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)
        # Clusters without members are untouched.
        empty = np.setdiff1d(np.arange(8), np.unique(labels))
        assert len(empty) > 0
        np.testing.assert_array_equal(fast[empty], centroids[empty])

    def test_full_fit_matches_reference(self, rng):
        data = rng.normal(size=(1500, 8))
        fast = KMeans(20, rng=np.random.default_rng(3)).fit(data)
        slow = KMeans(20, rng=np.random.default_rng(3))
        slow._update_centroids = slow._update_centroids_reference
        slow.fit(data)
        assert fast.iterations_run == slow.iterations_run
        np.testing.assert_allclose(
            fast.centroids, slow.centroids, atol=1e-9, rtol=0
        )


class TestChunkedAssign:
    def test_chunked_and_unchunked_labels_agree(self, rng):
        data = rng.normal(size=(10_000, 12))
        km = KMeans(25, rng=np.random.default_rng(5)).fit(data[:3000])
        chunked = km._assign(data, km.centroids)  # default 4096 chunk
        unchunked = km._assign(data, km.centroids, chunk=len(data))
        np.testing.assert_array_equal(chunked, unchunked)

    def test_tiny_chunk_agrees(self, rng):
        data = rng.normal(size=(517, 6))
        km = KMeans(9, rng=np.random.default_rng(6)).fit(data)
        np.testing.assert_array_equal(
            km._assign(data, km.centroids, chunk=64),
            km._assign(data, km.centroids, chunk=len(data)),
        )

    def test_predict_single_point(self, rng):
        data = rng.normal(size=(200, 5))
        km = KMeans(4, rng=np.random.default_rng(8)).fit(data)
        label = km.predict(data[0])
        assert label.shape == (1,)
        assert 0 <= label[0] < 4

"""Tests for the geodesic flow kernel and manifold utilities."""

import numpy as np
import pytest

from repro.domain_adaptation.gfk import geodesic_flow_kernel
from repro.domain_adaptation.manifold import (
    orthonormalize,
    principal_angles,
    projection_frobenius_distance,
    subspace_distance,
)


def random_basis(rng, alpha, beta):
    return orthonormalize(rng.normal(size=(alpha, beta)))


class TestPrincipalAngles:
    def test_identical_subspaces_zero_angles(self, rng):
        x = random_basis(rng, 20, 4)
        np.testing.assert_allclose(principal_angles(x, x), 0.0, atol=1e-7)

    def test_orthogonal_subspaces_right_angles(self):
        x = np.eye(10)[:, :3]
        z = np.eye(10)[:, 5:8]
        np.testing.assert_allclose(
            principal_angles(x, z), np.pi / 2, atol=1e-10
        )

    def test_angles_in_valid_range(self, rng):
        x = random_basis(rng, 30, 5)
        z = random_basis(rng, 30, 5)
        angles = principal_angles(x, z)
        assert np.all(angles >= -1e-12)
        assert np.all(angles <= np.pi / 2 + 1e-12)

    def test_symmetric(self, rng):
        x = random_basis(rng, 25, 4)
        z = random_basis(rng, 25, 4)
        np.testing.assert_allclose(
            principal_angles(x, z), principal_angles(z, x), atol=1e-9
        )

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            principal_angles(
                random_basis(rng, 10, 2), random_basis(rng, 12, 2)
            )


class TestSubspaceDistances:
    def test_zero_for_same_subspace(self, rng):
        x = random_basis(rng, 15, 3)
        assert subspace_distance(x, x) == pytest.approx(0.0, abs=1e-6)

    def test_rotation_invariance(self, rng):
        """Distance depends on the subspace, not the basis choice."""
        x = random_basis(rng, 20, 4)
        z = random_basis(rng, 20, 4)
        rotation = orthonormalize(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(
            subspace_distance(x, z),
            subspace_distance(x @ rotation, z),
            atol=1e-8,
        )

    def test_chordal_bounded_by_sqrt_beta(self, rng):
        x = random_basis(rng, 20, 4)
        z = random_basis(rng, 20, 4)
        assert projection_frobenius_distance(x, z) <= np.sqrt(4) + 1e-9


class TestGeodesicFlowKernel:
    def test_kernel_matrix_symmetric(self, rng):
        x = random_basis(rng, 12, 3)
        z = random_basis(rng, 12, 3)
        w = geodesic_flow_kernel(x, z).matrix()
        np.testing.assert_allclose(w, w.T, atol=1e-10)

    def test_kernel_positive_semidefinite(self, rng):
        x = random_basis(rng, 15, 4)
        z = random_basis(rng, 15, 4)
        w = geodesic_flow_kernel(x, z).matrix()
        eigenvalues = np.linalg.eigvalsh(w)
        assert eigenvalues.min() > -1e-10

    def test_identical_subspaces_project_fully(self, rng):
        """When x == z the kernel is the projector onto span(x): vectors
        inside the subspace keep their inner products."""
        x = random_basis(rng, 10, 3)
        kernel = geodesic_flow_kernel(x, x)
        v = x @ rng.normal(size=3)
        assert kernel.apply(v, v)[0, 0] == pytest.approx(v @ v, abs=1e-8)

    def test_apply_matches_matrix(self, rng):
        x = random_basis(rng, 12, 3)
        z = random_basis(rng, 12, 3)
        kernel = geodesic_flow_kernel(x, z)
        a = rng.normal(size=(4, 12))
        b = rng.normal(size=(5, 12))
        np.testing.assert_allclose(
            kernel.apply(a, b), a @ kernel.matrix() @ b.T, atol=1e-8
        )

    def test_quadratic_matches_apply_diagonal(self, rng):
        x = random_basis(rng, 12, 3)
        z = random_basis(rng, 12, 3)
        kernel = geodesic_flow_kernel(x, z)
        a = rng.normal(size=(6, 12))
        np.testing.assert_allclose(
            kernel.quadratic(a), np.diag(kernel.apply(a, a)), atol=1e-8
        )

    def test_factorisation_saves_memory(self, rng):
        """The factor has 2*beta columns, never alpha."""
        x = random_basis(rng, 200, 5)
        z = random_basis(rng, 200, 5)
        kernel = geodesic_flow_kernel(x, z)
        assert kernel.factor.shape == (200, 10)
        assert kernel.core.shape == (10, 10)

    def test_symmetric_in_arguments(self, rng):
        """Swapping source/target subspaces yields the same kernel
        values (the geodesic flow integral is symmetric)."""
        x = random_basis(rng, 14, 3)
        z = random_basis(rng, 14, 3)
        a = rng.normal(size=(3, 14))
        b = rng.normal(size=(3, 14))
        k_xz = geodesic_flow_kernel(x, z).apply(a, b)
        k_zx = geodesic_flow_kernel(z, x).apply(a, b)
        np.testing.assert_allclose(k_xz, k_zx, atol=1e-7)

    def test_rejects_mismatched_ambient(self, rng):
        with pytest.raises(ValueError):
            geodesic_flow_kernel(
                random_basis(rng, 10, 2), random_basis(rng, 11, 2)
            )

    def test_apply_rejects_wrong_feature_dim(self, rng):
        kernel = geodesic_flow_kernel(
            random_basis(rng, 10, 2), random_basis(rng, 10, 2)
        )
        with pytest.raises(ValueError):
            kernel.apply(np.zeros((2, 7)), np.zeros((2, 10)))

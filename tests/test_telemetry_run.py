"""End-to-end telemetry: instrumented runs, dump files, and the CLI.

The two regression tests at the top are the PR's contract: threading a
``Telemetry`` through the runner or the chaos harness must not change
a single simulation output — instrumentation reads the run, it never
steers it.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.runner import SimulationRunner
from repro.experiments.faults import ChaosSpec, run_chaos
from repro.telemetry import Telemetry
from repro.telemetry.schema import (
    validate_events_file,
    validate_metrics_file,
    validate_trace_file,
)

SPEC = ChaosSpec(loss_rate=0.2, crash_count=1, num_frames=10)


def _series_names(telemetry):
    return {m["name"] for m in telemetry.registry.snapshot()["metrics"]}


class TestTelemetryIsInvisibleToTheSimulation:
    def test_runner_outputs_bit_identical(self, dataset1, runner1):
        plain = SimulationRunner(
            dataset1, rng=np.random.default_rng(2017)
        )
        plain.library = runner1.library
        instrumented = SimulationRunner(
            dataset1,
            rng=np.random.default_rng(2017),
            telemetry=Telemetry(run_id="reg"),
        )
        instrumented.library = runner1.library
        a = plain.run(mode="full", budget=2.0, start=1000, end=1400)
        b = instrumented.run(mode="full", budget=2.0, start=1000, end=1400)
        assert vars(a) == vars(b)

    def test_chaos_outputs_bit_identical(self, runner1):
        plain = run_chaos(SPEC, runner1)
        faulty = run_chaos(
            SPEC, runner1, telemetry=Telemetry(run_id="reg")
        )
        assert plain.humans_detected == faulty.humans_detected
        assert plain.humans_present == faulty.humans_present
        assert plain.delivered_messages == faulty.delivered_messages
        assert plain.dropped_messages == faulty.dropped_messages
        assert plain.retransmissions == faulty.retransmissions
        assert plain.battery_by_camera == faulty.battery_by_camera
        assert plain.final_assignment == faulty.final_assignment
        assert plain.fault_kinds() == faulty.fault_kinds()


class TestChaosTelemetrySurface:
    @pytest.fixture(scope="class")
    def chaos_telemetry(self, runner1):
        telemetry = Telemetry(run_id="chaos-test")
        run_chaos(SPEC, runner1, telemetry=telemetry)
        return telemetry

    def test_emits_at_least_ten_distinct_series(self, chaos_telemetry):
        assert chaos_telemetry.registry.series_count() >= 10
        assert len(_series_names(chaos_telemetry)) >= 10

    def test_covers_energy_network_and_controller(self, chaos_telemetry):
        names = _series_names(chaos_telemetry)
        assert {
            "energy_joules_total",
            "battery_fraction_remaining",
            "network_messages_sent_total",
            "network_messages_dropped_total",
            "network_messages_delivered_total",
            "network_retransmissions_total",
            "controller_selections_total",
            "controller_assignments_total",
            "detection_frames_total",
            "run_rounds_total",
        } <= names

    def test_energy_split_by_category(self, chaos_telemetry):
        snap = chaos_telemetry.registry.snapshot()
        (energy,) = [
            m for m in snap["metrics"] if m["name"] == "energy_joules_total"
        ]
        categories = {
            s["labels"]["category"] for s in energy["series"]
        }
        # A lossy run pays for processing, first sends, and resends.
        assert {"processing", "communication", "retransmission"} <= categories

    def test_span_tree_has_run_round_phase_nesting(self, chaos_telemetry):
        spans = {s.span_id: s for s in chaos_telemetry.tracer.spans}
        by_name = {}
        for span in spans.values():
            by_name.setdefault(span.name, []).append(span)
        run = by_name["run"][0]
        rnd = by_name["round"][0]
        assert rnd.parent_id == run.span_id
        for phase in ("assessment", "selection", "operation"):
            assert any(
                s.parent_id == rnd.span_id for s in by_name[phase]
            ), phase
        assert any(
            spans[s.parent_id].name in ("assessment", "operation")
            for s in by_name["camera_op"]
        )

    def test_events_mirror_the_fault_log(self, chaos_telemetry):
        kinds = set(chaos_telemetry.events.kinds())
        assert "node_crash" in kinds
        assert "controller_decision" in kinds

    def test_dump_files_validate_against_schema(
        self, chaos_telemetry, tmp_path
    ):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        events = tmp_path / "events.jsonl"
        chaos_telemetry.write_metrics(metrics)
        chaos_telemetry.write_trace(trace)
        chaos_telemetry.write_events(events)
        assert validate_metrics_file(metrics) >= 10
        assert validate_trace_file(trace) > 0
        assert validate_events_file(events) > 0
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro.metrics.v1"

    def test_prometheus_text_exposition(self, chaos_telemetry, tmp_path):
        path = tmp_path / "metrics.prom"
        chaos_telemetry.write_metrics(path)
        text = path.read_text()
        assert "# TYPE energy_joules_total counter" in text
        assert 'node="' in text


class TestTelemetryReportCli:
    @pytest.fixture(scope="class")
    def dumps(self, runner1, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("telemetry")
        telemetry = Telemetry(run_id="cli-test")
        run_chaos(SPEC, runner1, telemetry=telemetry)
        paths = {
            "metrics": tmp / "m.json",
            "trace": tmp / "t.jsonl",
            "events": tmp / "e.jsonl",
        }
        telemetry.write_metrics(paths["metrics"])
        telemetry.write_trace(paths["trace"])
        telemetry.write_events(paths["events"])
        return paths

    def test_renders_all_three_sections(self, dumps, capsys):
        code = main([
            "telemetry-report",
            "--metrics", str(dumps["metrics"]),
            "--trace", str(dumps["trace"]),
            "--events", str(dumps["events"]),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "METRICS" in out
        assert "TRACE" in out
        assert "EVENTS" in out
        assert "energy_joules_total" in out
        assert "camera_op" in out

    def test_requires_at_least_one_input(self, capsys):
        assert main(["telemetry-report"]) == 2

    def test_chaos_cli_writes_validating_dumps(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        events = tmp_path / "e.jsonl"
        code = main([
            "chaos", "--loss-rate", "0.2", "--crash", "1",
            "--frames", "6",
            "--metrics-out", str(metrics),
            "--trace-out", str(trace),
            "--events-out", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "metric series" in out
        assert validate_metrics_file(metrics) >= 10
        assert validate_trace_file(trace) > 0
        assert validate_events_file(events) > 0
        run_ids = {
            json.loads(line)["run_id"]
            for line in trace.read_text().splitlines()
        }
        assert run_ids == {"chaos-7"}

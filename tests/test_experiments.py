"""Integration tests for the experiment drivers (small parameters).

These check the *shape* claims of each table/figure; the full-size
regenerations live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments.fig3 import adaptive_vs_fixed
from repro.experiments.fig4 import standard_combinations, tradeoff_curve
from repro.experiments.fig5 import (
    accuracy_retention,
    energy_savings,
    run_modes,
)
from repro.experiments.table2_3_4 import algorithm_table, render_table
from repro.experiments.tables import format_table


class TestFormatTable:
    def test_renders_aligned_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestAlgorithmTable:
    @pytest.fixture(scope="class")
    def train_rows(self, dataset1):
        return algorithm_table(1, camera_index=0, segment="train",
                               dataset=dataset1)

    def test_four_rows(self, train_rows):
        assert [r.algorithm for r in train_rows] == [
            "HOG", "ACF", "C4", "LSVM",
        ]

    def test_metrics_in_range(self, train_rows):
        for row in train_rows:
            assert 0.0 <= row.recall <= 1.0
            assert 0.0 <= row.precision <= 1.0
            assert row.energy_per_frame > 0
            assert row.time_per_frame > 0

    def test_table2_shape(self, train_rows):
        """Table II orderings: LSVM most accurate, ACF cheapest, LSVM
        slowest."""
        by_name = {r.algorithm: r for r in train_rows}
        assert by_name["LSVM"].f_score == max(r.f_score for r in train_rows)
        assert by_name["ACF"].energy_per_frame == min(
            r.energy_per_frame for r in train_rows
        )
        assert by_name["HOG"].f_score > by_name["ACF"].f_score

    def test_test_segment_reuses_thresholds(self, dataset1, train_rows):
        thresholds = {r.algorithm: r.threshold for r in train_rows}
        test_rows = algorithm_table(
            1, 0, "test", dataset=dataset1, train_thresholds=thresholds
        )
        for row in test_rows:
            assert row.threshold == thresholds[row.algorithm]

    def test_render(self, train_rows):
        text = render_table(train_rows, title="Table II")
        assert "Table II" in text
        assert "LSVM" in text

    def test_rejects_bad_segment(self, dataset1):
        with pytest.raises(ValueError):
            algorithm_table(1, 0, "validation", dataset=dataset1)


class TestFig3:
    @pytest.fixture(scope="class")
    def strategies(self):
        return {s.strategy: s for s in adaptive_vs_fixed()}

    def test_adaptive_beats_fixed(self, strategies):
        adaptive = strategies["adaptive"].f_score
        assert adaptive >= strategies["HOG"].f_score
        assert adaptive >= strategies["ACF"].f_score

    def test_adaptive_choices_match_paper(self, strategies):
        """HOG for dataset #1, ACF for dataset #2."""
        per_dataset = strategies["adaptive"].per_dataset
        assert per_dataset[1] == "HOG"
        assert per_dataset[2] == "ACF"

    def test_adaptive_improves_precision_and_recall_vs_hog(self, strategies):
        """The paper's headline for Fig. 3: both metrics improve
        simultaneously over fixed HOG."""
        adaptive, hog = strategies["adaptive"], strategies["HOG"]
        assert adaptive.precision > hog.precision
        assert adaptive.recall >= hog.recall - 0.05


class TestFig4:
    @pytest.fixture(scope="class")
    def points(self, runner1):
        return {p.label: p for p in tradeoff_curve(runner=runner1)}

    def test_all_combinations_present(self, points):
        assert set(points) == {
            "2HOG", "2ACF", "HOG+ACF", "4HOG", "4ACF", "2HOG+2ACF",
        }

    def test_energy_orderings(self, points):
        assert points["2ACF"].energy_joules < points["2HOG"].energy_joules
        assert points["4ACF"].energy_joules < points["4HOG"].energy_joules
        assert (
            points["2HOG+2ACF"].energy_joules
            < points["4HOG"].energy_joules
        )

    def test_mixed_saves_roughly_half(self, points):
        """Paper: 2HOG+2ACF consumes ~54% of 4HOG."""
        ratio = (
            points["2HOG+2ACF"].energy_joules
            / points["4HOG"].energy_joules
        )
        assert 0.4 < ratio < 0.7

    def test_mixed_accuracy_close_to_full(self, points):
        """Paper: 85% vs 92% of objects -> small relative gap."""
        gap = points["4HOG"].recall - points["2HOG+2ACF"].recall
        assert 0.0 <= gap < 0.15

    def test_four_cameras_beat_two(self, points):
        assert points["4HOG"].recall > points["2HOG"].recall

    def test_combinations_need_four_cameras(self):
        with pytest.raises(ValueError):
            standard_combinations(["a", "b"])


class TestFig5:
    @pytest.fixture(scope="class")
    def high_budget(self, runner1):
        return run_modes(dataset_number=1, budget=2.0, runner=runner1)

    def test_staircase(self, high_budget):
        """all_best > subset > full in energy."""
        assert (
            high_budget["full"].energy_joules
            <= high_budget["subset"].energy_joules + 1e-9
        )
        assert (
            high_budget["full"].energy_joules
            < high_budget["all_best"].energy_joules
        )

    def test_savings_and_retention(self, high_budget):
        savings = energy_savings(high_budget)
        retention = accuracy_retention(high_budget)
        assert savings["full"] < 0.9
        assert retention["full"] > 0.8

    def test_subset_uses_fewer_cameras(self, high_budget):
        rounds = high_budget["full"].cameras_per_round
        assert rounds and min(rounds) <= 3

"""Vectorised HOG vs the reference loop implementation.

The vectorised kernel must agree with the original per-cell /
per-block loops to 1e-9 on arbitrary images, including the
minimum-size edge case (one block: ``CELL_SIZE * BLOCK_CELLS`` per
side).
"""

import numpy as np
import pytest

from repro.vision.hog import (
    BLOCK_CELLS,
    CELL_SIZE,
    HOG_DIM,
    cell_histograms,
    cell_histograms_reference,
    hog_descriptor,
    hog_descriptor_reference,
)

MIN_SIDE = CELL_SIZE * BLOCK_CELLS  # 16: exactly one block


class TestHogEquivalence:
    @pytest.mark.parametrize(
        "shape",
        [
            (MIN_SIDE, MIN_SIDE),  # minimum size: a single block
            (64, 128),  # canonical window transposed orientation
            (128, 64),  # canonical window
            (80, 100),
            (120, 160),
            (17, 31),  # not cell-aligned: trailing pixels dropped
        ],
    )
    def test_descriptor_matches_reference(self, shape, rng):
        image = rng.uniform(size=shape)
        fast = hog_descriptor(image, resize=False)
        slow = hog_descriptor_reference(image, resize=False)
        assert fast.shape == slow.shape
        np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("shape", [(MIN_SIDE, MIN_SIDE), (90, 70)])
    def test_descriptor_matches_reference_with_resize(self, shape, rng):
        image = rng.uniform(size=shape)
        fast = hog_descriptor(image, resize=True)
        slow = hog_descriptor_reference(image, resize=True)
        assert fast.shape == (HOG_DIM,)
        np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)

    def test_cell_histograms_match_reference(self, rng):
        image = rng.uniform(size=(64, 128))
        np.testing.assert_allclose(
            cell_histograms(image),
            cell_histograms_reference(image),
            atol=1e-9,
            rtol=0,
        )

    def test_constant_image(self):
        image = np.full((MIN_SIDE, MIN_SIDE), 0.5)
        np.testing.assert_allclose(
            hog_descriptor(image, resize=False),
            hog_descriptor_reference(image, resize=False),
            atol=1e-9,
            rtol=0,
        )

    def test_reference_rejects_tiny_image_too(self):
        tiny = np.zeros((MIN_SIDE - 1, MIN_SIDE))
        with pytest.raises(ValueError):
            hog_descriptor(tiny, resize=False)
        with pytest.raises(ValueError):
            hog_descriptor_reference(tiny, resize=False)

    def test_block_count_tracks_cells(self, rng):
        image = rng.uniform(size=(40, 56))  # 5x7 cells -> 4x6 blocks
        desc = hog_descriptor(image, resize=False)
        cells_y, cells_x = 40 // CELL_SIZE, 56 // CELL_SIZE
        blocks = (cells_y - BLOCK_CELLS + 1) * (cells_x - BLOCK_CELLS + 1)
        assert desc.shape == (blocks * BLOCK_CELLS * BLOCK_CELLS * 9,)

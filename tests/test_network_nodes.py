"""Edge-case tests for the camera and controller network nodes."""

import numpy as np
import pytest

from repro.detection.base import BoundingBox, Detection
from repro.energy.model import ProcessingEnergyModel
from repro.network.messages import (
    AlgorithmAssignment,
    AssessmentRequest,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
)
from repro.network.node import CameraSensorNode, _AssessmentCollector
from repro.network.simulator import EventSimulator, Node


class Sink(Node):
    def __init__(self, node_id="sink"):
        super().__init__(node_id)
        self.received = []

    def receive(self, message):
        self.received.append(message)


def make_camera(observations, node_id="cam"):
    from repro.detection.detectors import make_detector_suite
    from repro.world.environment import LAB

    suite = make_detector_suite(LAB)
    return CameraSensorNode(
        node_id=node_id,
        controller_id="sink",
        observations=observations,
        detectors=suite,
        thresholds={"HOG": 0.5, "ACF": 2.0},
        energy_model=ProcessingEnergyModel(width=360, height=288),
        rng=np.random.default_rng(3),
    )


@pytest.fixture()
def wired_camera(dataset1):
    records = dataset1.frames(0, 100, only_ground_truth=True)
    observations = [
        r.observation(dataset1.camera_ids[0]) for r in records
    ]
    sim = EventSimulator()
    sink = Sink()
    camera = make_camera(observations)
    sim.register_node(sink)
    sim.register_node(camera)
    sim.connect("cam", "sink")
    return sim, sink, camera


class TestCameraSensorNode:
    def test_start_without_features_reports_energy(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.start()
        sim.run()
        assert len(sink.received) == 1
        assert isinstance(sink.received[0], EnergyReport)

    def test_start_with_features_uploads(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.start(features=np.zeros((3, 10)))
        sim.run()
        kinds = [type(m) for m in sink.received]
        assert FeatureUpload in kinds
        assert EnergyReport in kinds

    def test_idle_node_processes_nothing(self, wired_camera):
        sim, sink, camera = wired_camera
        assert camera.active_algorithm is None
        assert not camera.process_next_frame()
        assert camera.frames_processed == 0

    def test_assignment_activates(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.receive(AlgorithmAssignment(
            sender="sink", recipient="cam", algorithm="HOG",
        ))
        assert camera.process_next_frame()
        sim.run()
        assert camera.frames_processed == 1
        assert isinstance(sink.received[-1], DetectionMetadata)

    def test_stream_exhaustion(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.receive(AlgorithmAssignment(
            sender="sink", recipient="cam", algorithm="ACF",
        ))
        steps = 0
        while camera.process_next_frame():
            steps += 1
        assert steps == len(camera.observations)
        assert not camera.process_next_frame()

    def test_processing_drains_battery(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.receive(AlgorithmAssignment(
            sender="sink", recipient="cam", algorithm="HOG",
        ))
        camera.process_next_frame()
        sim.run()
        assert camera.battery.consumed >= 1.08  # HOG processing

    def test_assessment_runs_requested_algorithms(self, wired_camera):
        sim, sink, camera = wired_camera
        camera.receive(AssessmentRequest(
            sender="sink", recipient="cam",
            num_frames=2, algorithms=["HOG", "ACF"],
        ))
        sim.run()
        metadata = [
            m for m in sink.received if isinstance(m, DetectionMetadata)
        ]
        assert len(metadata) == 4  # 2 frames x 2 algorithms
        assert {m.algorithm for m in metadata} == {"HOG", "ACF"}

    def test_unknown_message_rejected(self, wired_camera):
        sim, sink, camera = wired_camera
        with pytest.raises(TypeError):
            camera.receive(EnergyReport(sender="sink", recipient="cam"))


class TestAssessmentCollector:
    def _metadata(self, camera, frame, algorithm):
        return DetectionMetadata(
            sender=camera,
            recipient="ctrl",
            frame_index=frame,
            algorithm=algorithm,
            detections=[
                Detection(
                    bbox=BoundingBox(0, 0, 5, 10),
                    score=0.5,
                    camera_id=camera,
                    frame_index=frame,
                    algorithm=algorithm,
                )
            ],
        )

    def test_orders_frames(self):
        collector = _AssessmentCollector(expected_frames=2)
        collector.add(self._metadata("c1", 50, "HOG"))
        collector.add(self._metadata("c1", 25, "HOG"))
        assessment = collector.to_assessment()
        assert assessment.num_frames == 2
        # Frame 25 comes first despite arriving second.
        assert assessment.frames[0]["c1"]["HOG"][0].frame_index == 25

    def test_groups_by_camera_and_algorithm(self):
        collector = _AssessmentCollector(expected_frames=1)
        collector.add(self._metadata("c1", 0, "HOG"))
        collector.add(self._metadata("c1", 0, "ACF"))
        collector.add(self._metadata("c2", 0, "HOG"))
        assessment = collector.to_assessment()
        assert set(assessment.camera_ids) == {"c1", "c2"}
        assert set(assessment.algorithms_for("c1")) == {"HOG", "ACF"}

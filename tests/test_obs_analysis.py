"""The offline analysis layer: span profiler and regression differ."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs import (
    DiffThresholds,
    critical_paths,
    diff_runs,
    extract_indicators,
    fold_spans,
    has_regression,
    load_metrics,
    load_spans,
    render_diff,
    render_folded,
    render_profile,
)


def _span(span_id, name, start, duration, parent=None, **attributes):
    return {
        "schema": "repro.span.v1",
        "run_id": "t",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start_s": start,
        "duration_s": duration,
        "attributes": attributes,
    }


#: run(10s) -> round#0(6s) -> detection(4s) -> score(1s)
#:                         -> selection(1s)
#:          -> round#1(3s) -> detection(2s)
SPANS = [
    _span(1, "run", 0.0, 10.0),
    _span(2, "round", 0.0, 6.0, parent=1, index=0),
    _span(3, "detection", 0.0, 4.0, parent=2),
    _span(4, "score", 0.0, 1.0, parent=3),
    _span(5, "selection", 4.0, 1.0, parent=2),
    _span(6, "round", 6.0, 3.0, parent=1, index=1),
    _span(7, "detection", 6.0, 2.0, parent=6),
]


def _metrics(energy=100.0, rounds=10.0, detected=20.0, present=25.0,
             retrans=5.0, trips=2.0):
    def scalar(name, value, kind="counter"):
        return {
            "name": name, "type": kind, "help": "", "labels": [],
            "series": [{"labels": {}, "value": value}],
        }

    return {
        "schema": "repro.metrics.v1",
        "metrics": [
            scalar("energy_joules_total", energy),
            scalar("run_rounds_total", rounds),
            scalar("run_humans_detected_total", detected),
            scalar("run_humans_present_total", present),
            scalar("network_retransmissions_total", retrans),
            scalar("breaker_open_total", trips),
        ],
    }


class TestFoldSpans:
    def test_self_vs_total(self):
        by_path = {e.path: e for e in fold_spans(SPANS)}
        run = by_path["run"]
        assert run.total_s == 10.0
        assert run.self_s == pytest.approx(1.0)  # 10 - (6 + 3)
        rounds = by_path["run;round"]
        assert rounds.calls == 2
        assert rounds.total_s == 9.0
        assert rounds.self_s == pytest.approx(2.0)  # (6-5) + (3-2)
        detection = by_path["run;round;detection"]
        assert detection.total_s == 6.0
        assert detection.self_s == pytest.approx(5.0)
        assert detection.mean_s == pytest.approx(3.0)
        # leaves keep all their time
        assert by_path["run;round;detection;score"].self_s == 1.0

    def test_sorted_by_self_time(self):
        entries = fold_spans(SPANS)
        self_times = [e.self_s for e in entries]
        assert self_times == sorted(self_times, reverse=True)

    def test_self_time_clamped_at_zero(self):
        spans = [
            _span(1, "parent", 0.0, 1.0),
            _span(2, "child", 0.0, 5.0, parent=1),
        ]
        by_path = {e.path: e for e in fold_spans(spans)}
        assert by_path["parent"].self_s == 0.0

    def test_render_folded_microseconds(self):
        lines = render_folded(fold_spans(SPANS)).splitlines()
        assert "run;round;detection 5000000" in lines
        assert "run;round;detection;score 1000000" in lines


class TestCriticalPaths:
    def test_walks_heaviest_child_to_leaf(self):
        paths = critical_paths(SPANS)
        assert len(paths) == 2
        first = paths[0]
        assert first.round_index == 0
        assert first.duration_s == 6.0
        assert [name for name, _ in first.steps] == ["detection", "score"]
        assert paths[1].steps == [("detection", 2.0)]

    def test_render_profile_table_and_truncation(self):
        report = render_profile(SPANS, limit=2)
        assert "7 spans" in report
        assert "(+3 more paths)" in report
        assert "Critical path per round:" in report
        assert "round 0: 6000.0ms" in report


class TestLoadInputs:
    def test_load_spans_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"schema": "repro.event.v1"}) + "\n")
        with pytest.raises(ValueError, match="repro.span.v1"):
            load_spans(path)

    def test_load_metrics_snapshot(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_metrics(), indent=2))
        assert load_metrics(path)["schema"] == "repro.metrics.v1"

    def test_load_metrics_from_stream_takes_last_record(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as f:
            for energy in (10.0, 100.0):
                f.write(json.dumps({
                    "schema": "repro.stream.v1", "seq": 0, "round": 0,
                    "metrics": _metrics(energy=energy),
                }) + "\n")
        payload = load_metrics(path)
        assert extract_indicators(payload)["energy_joules"] == 100.0

    def test_load_metrics_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "repro.span.v1"}))
        with pytest.raises(ValueError, match="expected"):
            load_metrics(path)


class TestExtractIndicators:
    def test_derived_ratios(self):
        indicators = extract_indicators(_metrics())
        assert indicators["energy_joules"] == 100.0
        assert indicators["energy_per_round"] == 10.0
        assert indicators["joules_per_detection"] == 5.0
        assert indicators["detection_rate"] == 0.8
        assert indicators["retransmissions"] == 5.0
        assert indicators["breaker_trips"] == 2.0

    def test_breaker_trips_fault_event_fallback(self):
        payload = _metrics(trips=0.0)
        payload["metrics"].append({
            "name": "fault_events_total", "type": "counter", "help": "",
            "labels": ["kind"],
            "series": [
                {"labels": {"kind": "breaker_open"}, "value": 3.0},
                {"labels": {"kind": "sensor_fault"}, "value": 7.0},
            ],
        })
        assert extract_indicators(payload)["breaker_trips"] == 3.0


class TestDiffRuns:
    def test_identical_runs_are_clean(self):
        diffs = diff_runs(_metrics(), copy.deepcopy(_metrics()))
        assert not has_regression(diffs)
        assert all(d.relative_change == 0.0 for d in diffs)

    def test_energy_regression_flagged(self):
        diffs = diff_runs(_metrics(), _metrics(energy=120.0))
        regressed = {d.name for d in diffs if d.regressed}
        # +20% energy moves all three energy indicators past 10%
        assert regressed == {
            "energy_joules", "energy_per_round", "joules_per_detection"
        }

    def test_improvement_never_flags(self):
        better = _metrics(energy=50.0, detected=25.0, retrans=0.0,
                          trips=0.0)
        assert not has_regression(diff_runs(_metrics(), better))

    def test_detection_rate_direction(self):
        worse = diff_runs(_metrics(), _metrics(detected=15.0))
        assert any(
            d.name == "detection_rate" and d.regressed for d in worse
        )

    def test_threshold_overrides(self):
        thresholds = DiffThresholds(
            default=0.5, overrides={"energy_joules": 0.05}
        )
        diffs = diff_runs(
            _metrics(), _metrics(energy=110.0), thresholds
        )
        regressed = {d.name for d in diffs if d.regressed}
        assert regressed == {"energy_joules"}

    def test_render_mentions_regressions(self):
        report = render_diff(diff_runs(_metrics(), _metrics(energy=200.0)))
        assert "REGRESSION" in report
        assert "regression(s)" in report


class TestObsCli:
    def test_profile_renders_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            "".join(json.dumps(s) + "\n" for s in SPANS)
        )
        assert main(["obs", "profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run;round;detection" in out
        assert main(["obs", "profile", str(trace), "--folded"]) == 0
        assert "run;round;detection 5000000" in capsys.readouterr().out

    def test_profile_bad_input_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "profile", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_exit_codes(self, capsys, tmp_path):
        baseline = tmp_path / "a.json"
        regressed = tmp_path / "b.json"
        baseline.write_text(json.dumps(_metrics()))
        # ≥10% worse joules-per-detection: energy up, detections down
        regressed.write_text(
            json.dumps(_metrics(energy=115.0, detected=19.0))
        )
        assert main(["obs", "diff", str(baseline), str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert main(["obs", "diff", str(baseline), str(regressed)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # a loose enough threshold lets the same pair pass
        assert main([
            "obs", "diff", str(baseline), str(regressed),
            "--threshold", "0.9",
        ]) == 0

    def test_diff_threshold_for_override(self, capsys, tmp_path):
        baseline = tmp_path / "a.json"
        candidate = tmp_path / "b.json"
        baseline.write_text(json.dumps(_metrics()))
        candidate.write_text(json.dumps(_metrics(energy=103.0)))
        args = ["obs", "diff", str(baseline), str(candidate)]
        assert main(args) == 0
        assert main(args + ["--threshold-for", "energy_joules=0.01"]) == 1
        capsys.readouterr()

    def test_diff_bad_threshold_for_exits_2(self, capsys, tmp_path):
        baseline = tmp_path / "a.json"
        baseline.write_text(json.dumps(_metrics()))
        assert main([
            "obs", "diff", str(baseline), str(baseline),
            "--threshold-for", "not_an_indicator=0.5",
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_bad_input_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["obs", "diff", str(missing), str(missing)]) == 2
        assert "error" in capsys.readouterr().err

"""Graceful-degradation layer: breaker, health monitor, ladder.

Covers the :mod:`repro.resilience` subsystem end to end — the
circuit-breaker state machine (seeded jittered backoff, half-open
probe discipline, snapshot round-trip), the health monitor's channels
(residual z-gating, stuck frames, corruption/give-up decay, heartbeat
floor, battery slope), the staged ladder (degrade → quarantine →
probe → readmit with recalibration), and the two integration
guarantees the tentpole promises:

* **inertness** — with the layer enabled and no faults injected,
  every policy and executor backend stays bit-identical to the
  pre-refactor goldens;
* **recovery** — under injected faults the ladder engages, transitions
  land in the event log, breakers cut off retry storms with a
  structured ``transport_give_up`` record, and a checkpoint taken
  while a camera is quarantined resumes bit-identically.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import CheckpointConfig, CheckpointStore, SimulatedCrash
from repro.core.controller import (
    CAMERA_ACTIVE,
    CAMERA_DEGRADED,
    CAMERA_QUARANTINED,
)
from repro.engine.core import DeploymentEngine
from repro.engine.executor import make_executor
from repro.experiments.faults import ChaosSpec, run_chaos
from repro.faults.events import FaultLog
from repro.faults.plan import FaultPlan, LinkFault, MessageCorruption, SensorFault
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    ResilienceConfig,
    ResilienceCoordinator,
    build_coordinator,
    config_with_thresholds,
)
from tests.golden_utils import (
    chaos_result_fingerprint,
    golden_run_configs,
    load_golden,
    run_result_fingerprint,
)

ON = ResilienceConfig(enabled=True)


def normalize(fingerprint):
    return json.loads(json.dumps(fingerprint))


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        defaults = dict(
            failure_threshold=3,
            reset_timeout_s=1.0,
            backoff_factor=2.0,
            max_reset_timeout_s=60.0,
            jitter_s=0.0,
            rng=np.random.default_rng(42),
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_trips_after_threshold_and_blocks(self):
        breaker = self._breaker()
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)
        assert breaker.blocked == 1

    def test_success_resets_failure_count(self):
        breaker = self._breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CLOSED

    def test_half_open_single_probe_then_close(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.allow(breaker.retry_at)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(breaker.retry_at)  # only one probe
        breaker.record_success(breaker.retry_at + 0.1)
        assert breaker.state == CLOSED
        assert breaker.allow(breaker.retry_at + 0.2)

    def test_reopen_backs_off_exponentially_with_cap(self):
        breaker = self._breaker(max_reset_timeout_s=3.0)
        for _ in range(3):
            breaker.record_failure(0.0)
        first = breaker.retry_at - 0.0  # 1.0
        assert first == pytest.approx(1.0)
        now = breaker.retry_at
        assert breaker.allow(now)  # half-open probe
        breaker.record_failure(now)  # probe fails: reopen, longer
        second = breaker.retry_at - now
        assert second == pytest.approx(2.0)
        now = breaker.retry_at
        assert breaker.allow(now)
        breaker.record_failure(now)
        assert breaker.retry_at - now == pytest.approx(3.0)  # capped

    def test_jitter_is_seeded_and_deterministic(self):
        def tripped(seed):
            breaker = self._breaker(
                jitter_s=0.5, rng=np.random.default_rng(seed)
            )
            for _ in range(3):
                breaker.record_failure(0.0)
            return breaker.retry_at

        assert tripped(7) == tripped(7)
        assert tripped(7) != tripped(8)

    def test_healthy_breaker_never_draws_rng(self):
        """No rng consumption without an open: fault-free runs stay
        bit-identical no matter how much traffic the breaker sees."""
        breaker = self._breaker(jitter_s=0.5, rng=np.random.default_rng(9))
        for t in range(50):
            assert breaker.allow(float(t))
            breaker.record_success(float(t))
        breaker.record_failure(50.0)  # below threshold: still no draw
        assert (
            breaker.rng.bit_generator.state
            == np.random.default_rng(9).bit_generator.state
        )

    def test_snapshot_restore_round_trip(self):
        breaker = self._breaker(jitter_s=0.25)
        for _ in range(3):
            breaker.record_failure(2.0)
        snap = json.loads(json.dumps(breaker.snapshot()))
        clone = self._breaker(jitter_s=0.25)
        clone.restore(snap)
        assert clone.snapshot() == breaker.snapshot()
        assert clone.state == OPEN
        assert not clone.allow(clone.retry_at - 0.1)


# ----------------------------------------------------------------------
# Health monitor
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_unknown_camera_is_healthy(self):
        monitor = HealthMonitor()
        assert monitor.health("cam") == 1.0
        assert set(monitor.channels("cam").values()) == {1.0}

    def test_clean_traffic_stays_healthy(self):
        monitor = HealthMonitor()
        for i in range(20):
            monitor.observe_detections("cam", "ACF", i, [1.0, 1.2])
        assert monitor.health("cam") == 1.0

    def test_garbage_trips_residual_without_teaching_baseline(self):
        monitor = HealthMonitor(HealthConfig(min_samples=4))
        for i in range(8):
            monitor.observe_detections("cam", "ACF", i, [1.0, 1.1])
        learned = monitor._cameras["cam"].count_baselines["ACF"].count
        for i in range(8, 12):
            monitor.observe_detections("cam", "ACF", i, [5.0] * 9)
        channels = monitor.channels("cam")
        assert channels["residual"] < 1.0
        assert monitor.health("cam") < 1.0
        # z-gated learning: the fabricated burst is not absorbed, so a
        # faulty camera cannot normalise its own garbage.
        assert (
            monitor._cameras["cam"].count_baselines["ACF"].count == learned
        )

    def test_stuck_frames_trip_after_repeats(self):
        monitor = HealthMonitor()
        for _ in range(3):  # identical (frame, scores) signature
            monitor.observe_detections("cam", "ACF", 5, [1.0, 0.8])
        assert monitor.channels("cam")["stuck"] == 0.15
        # A fresh frame clears the repeat counter.
        monitor.observe_detections("cam", "ACF", 6, [1.0, 0.8])
        assert monitor.channels("cam")["stuck"] == 1.0

    def test_corruption_counts_decay(self):
        monitor = HealthMonitor()
        for _ in range(4):
            monitor.observe_corruption("cam")
        assert monitor.channels("cam")["corruption"] == pytest.approx(0.5)
        monitor.decay_transients()
        assert monitor.channels("cam")["corruption"] == 1.0

    def test_give_ups_decay_like_corruption(self):
        monitor = HealthMonitor()
        for _ in range(8):
            monitor.observe_give_up("cam")
        assert monitor.channels("cam")["transport"] == pytest.approx(0.25)
        for _ in range(2):
            monitor.decay_transients()
        assert monitor.channels("cam")["transport"] == 1.0

    def test_heartbeat_misses_are_floored(self):
        monitor = HealthMonitor()
        for _ in range(10):
            monitor.observe_miss("cam")
        config = monitor.config
        assert monitor.channels("cam")["heartbeat"] == config.miss_floor
        monitor.observe_heartbeat("cam", 10.0, 500.0)
        assert monitor.channels("cam")["heartbeat"] == 1.0

    def test_battery_slope_from_heartbeat_residuals(self):
        monitor = HealthMonitor()
        monitor.observe_heartbeat("cam", 0.0, 1000.0)
        monitor.observe_heartbeat("cam", 1.0, 900.0)  # 100 J/s drain
        assert monitor.channels("cam")["battery"] == pytest.approx(0.25)

    def test_reset_baseline_forgets_everything(self):
        monitor = HealthMonitor()
        for _ in range(3):
            monitor.observe_detections("cam", "ACF", 5, [1.0])
            monitor.observe_corruption("cam")
            monitor.observe_miss("cam")
        assert monitor.health("cam") < 1.0
        monitor.reset_baseline("cam")
        assert monitor.health("cam") == 1.0

    def test_snapshot_json_round_trip(self):
        monitor = HealthMonitor()
        for i in range(8):
            monitor.observe_detections("cam", "ACF", i, [1.0, 1.1])
        monitor.observe_corruption("cam")
        monitor.observe_heartbeat("cam", 0.0, 1000.0)
        monitor.observe_heartbeat("cam", 2.0, 990.0)
        monitor.observe_miss("cam")
        snap = json.loads(json.dumps(monitor.snapshot()))
        clone = HealthMonitor()
        clone.restore(snap)
        assert clone.channels("cam") == monitor.channels("cam")
        assert clone.snapshot() == monitor.snapshot()


# ----------------------------------------------------------------------
# Ladder
# ----------------------------------------------------------------------
class TestLadder:
    def test_build_coordinator_disabled_is_none(self):
        assert build_coordinator(None, ["a"]) is None
        assert build_coordinator(ResilienceConfig(enabled=False), ["a"]) is None
        coordinator = build_coordinator(ON, ["a", "b"])
        assert coordinator.modes == {
            "a": CAMERA_ACTIVE,
            "b": CAMERA_ACTIVE,
        }

    def test_quarantine_then_decay_then_readmit(self):
        log = FaultLog()
        coordinator = ResilienceCoordinator(config=ON, fault_log=log)
        coordinator.register("cam")
        readmitted = []
        coordinator.on_readmit = lambda cam, now: readmitted.append((cam, now))
        for _ in range(40):
            coordinator.monitor.observe_corruption("cam")
        moves = coordinator.evaluate(1.0)
        assert [(t.camera_id, t.new_mode) for t in moves] == [
            ("cam", CAMERA_QUARANTINED)
        ]
        # Transient evidence decays at each tick; once the corruption
        # stops arriving the camera heals past the readmit threshold.
        now, modes = 1.0, []
        while coordinator.mode("cam") != CAMERA_ACTIVE:
            now += 1.0
            assert now < 20.0, "camera never recovered"
            modes += [t.new_mode for t in coordinator.evaluate(now)]
        assert modes == [CAMERA_ACTIVE]
        assert readmitted == [("cam", now)]
        fault_kinds = [e.kind for e in log.faults]
        recovery_kinds = [e.kind for e in log.recoveries]
        assert "camera_quarantined" in fault_kinds
        assert "camera_readmitted" in recovery_kinds
        assert "camera_recalibrated" in recovery_kinds

    def test_hysteresis_holds_degraded_between_thresholds(self):
        coordinator = ResilienceCoordinator(config=ON)
        coordinator.register("cam")
        for _ in range(5):
            coordinator.monitor.observe_corruption("cam")
        # health = 2/5 = 0.4: below degrade (0.65), above quarantine.
        moves = coordinator.evaluate(1.0)
        assert [t.new_mode for t in moves] == [CAMERA_DEGRADED]
        # After one decay: 2/2.5 = 0.8 — healthier, but short of the
        # readmit threshold (0.85), so the mode must not flap.
        assert coordinator.evaluate(2.0) == []
        assert coordinator.mode("cam") == CAMERA_DEGRADED
        # Fully decayed: readmitted.
        moves = coordinator.evaluate(3.0)
        assert [t.new_mode for t in moves] == [CAMERA_ACTIVE]

    def test_due_probes_respect_interval(self):
        coordinator = ResilienceCoordinator(config=ON)
        coordinator.register("cam")
        coordinator.modes["cam"] = CAMERA_QUARANTINED
        interval = coordinator.config.probe_interval_s
        assert coordinator.due_probes(10.0) == ["cam"]
        assert coordinator.due_probes(10.0 + interval / 2) == []
        assert coordinator.due_probes(10.0 + interval) == ["cam"]

    def test_snapshot_restore_round_trip(self):
        coordinator = ResilienceCoordinator(config=ON)
        coordinator.register("cam")
        for _ in range(40):
            coordinator.monitor.observe_corruption("cam")
        coordinator.evaluate(1.0)
        coordinator.breaker("cam").record_failure(1.0)
        coordinator.due_probes(2.0)
        snap = json.loads(json.dumps(coordinator.snapshot()))
        clone = ResilienceCoordinator(config=ON)
        clone.restore(snap)
        assert clone.modes == coordinator.modes
        assert clone.snapshot() == coordinator.snapshot()

    def test_restore_rejects_unknown_mode(self):
        coordinator = ResilienceCoordinator(config=ON)
        with pytest.raises(ValueError, match="not one of"):
            coordinator.restore(
                {
                    "modes": {"cam": "haunted"},
                    "monitor": {},
                    "breakers": {},
                    "last_probe": {},
                }
            )

    def test_config_with_thresholds_overrides_and_validates(self):
        tuned = config_with_thresholds(
            ON, degrade_below=0.7, quarantine_below=0.4, readmit_above=0.9
        )
        assert tuned.health.degrade_below == 0.7
        assert tuned.health.quarantine_below == 0.4
        assert tuned.health.readmit_above == 0.9
        assert ON.health.degrade_below == 0.65  # base unchanged
        with pytest.raises(ValueError, match="thresholds"):
            config_with_thresholds(ON, quarantine_below=0.9)


# ----------------------------------------------------------------------
# Inertness: resilience on + zero faults == the goldens, bit for bit
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def run_goldens():
    return load_golden("run_results")


@pytest.fixture(scope="module")
def chaos_goldens():
    return load_golden("chaos_results")


class TestInertness:
    @pytest.mark.parametrize("name", ["all_best", "subset", "full", "fixed"])
    def test_serial_matches_golden(self, runner1, run_goldens, name):
        configs = golden_run_configs(runner1.dataset.camera_ids)
        result = runner1.run(resilience=ON, **configs[name])
        assert normalize(run_result_fingerprint(result)) == (
            run_goldens[name]
        ), f"resilience-on {name!r} run drifted from the golden"

    @pytest.mark.parametrize("backend", ["pool", "shm"])
    @pytest.mark.parametrize("name", ["all_best", "subset", "full", "fixed"])
    def test_parallel_backends_match_golden(
        self, runner1, run_goldens, backend, name
    ):
        configs = golden_run_configs(runner1.dataset.camera_ids)
        kwargs = dict(configs[name])
        mode = kwargs.pop("mode")
        engine = DeploymentEngine(
            runner1.engine.context,
            seed=2017,
            executor=make_executor(2, backend=backend),
        )
        try:
            result = engine.run(mode, resilience=ON, **kwargs)
        finally:
            engine.close()
        assert normalize(run_result_fingerprint(result)) == (
            run_goldens[name]
        ), f"resilience-on {name!r} drifted under the {backend} backend"

    def test_zero_fault_chaos_matches_golden(self, runner1, chaos_goldens):
        """The networked path: same fingerprint as the zero-fault
        golden except the (all-active) camera-mode map the enabled
        layer reports."""
        result = run_chaos(
            ChaosSpec(num_frames=8, resilience=ON), runner1
        )
        fingerprint = normalize(chaos_result_fingerprint(result))
        modes = fingerprint.pop("camera_modes")
        assert set(modes.values()) == {CAMERA_ACTIVE}
        golden = dict(chaos_goldens["zero_fault"])
        golden.pop("camera_modes")
        assert fingerprint == golden


# ----------------------------------------------------------------------
# Fault-driven integration: breakers, give-up events, corruption
# ----------------------------------------------------------------------
def _spec(resilience=None):
    """The benchmark operating point: two of four cameras selected."""
    return ChaosSpec(num_frames=14, budget=1.0, resilience=resilience)


class TestFaultIntegration:
    def test_transport_give_up_event_is_structured(self, runner1):
        """A fully lost link exhausts retries: structured
        ``transport_give_up`` records land in the event log (with and
        without the resilience layer), and the guarded run folds the
        give-ups into the camera's health."""
        horizon = _spec().horizon_s
        plan = FaultPlan(
            seed=3,
            link_faults=(
                LinkFault(
                    "controller",
                    "lab-cam3",
                    loss_rate=1.0,
                    start_s=horizon / 3.0,
                    end_s=horizon,
                ),
            ),
        )
        bare = run_chaos(_spec(), runner1, plan=plan)
        assert "transport_give_up" in bare.fault_kinds()
        give_up = next(
            e for e in bare.fault_events if e.kind == "transport_give_up"
        )
        assert "attempts" in give_up.detail

        guarded = run_chaos(_spec(resilience=ON), runner1, plan=plan)
        assert "transport_give_up" in guarded.fault_kinds()
        # The controller's give-ups toward the dark camera register as
        # health evidence before liveness declares it dead outright.
        assert "camera_degraded" in guarded.fault_kinds()

    def test_breaker_cuts_off_retry_storm_on_transport(self):
        """Transport-level breaker cycle: consecutive give-ups trip it
        (``breaker_open`` in the log), an open breaker refuses sends
        with no retry ladder, and a successful half-open probe closes
        it again (``breaker_closed``)."""
        from repro.network.link import WirelessLink
        from repro.network.messages import Ack, EnergyReport
        from repro.network.reliability import ReliableTransport
        from repro.network.simulator import EventSimulator, Node

        class Endpoint(Node):
            def __init__(self, node_id, **kwargs):
                super().__init__(node_id)
                self.transport = ReliableTransport(
                    self, jitter_s=0.0, **kwargs
                )
                self.processed = []

            def receive(self, message):
                if isinstance(message, Ack):
                    self.transport.handle_ack(message)
                    return
                if self.transport.accept(message):
                    self.processed.append(message)

        class BlackHole:
            """Drop every data transmission while armed."""

            def __init__(self):
                self.armed = True

            def on_send(self, message):
                from repro.faults.injector import SendVerdict

                return SendVerdict(
                    drop=self.armed and message.kind == "EnergyReport"
                )

        log = FaultLog()
        coordinator = ResilienceCoordinator(
            config=ResilienceConfig(
                enabled=True,
                breaker_failure_threshold=2,
                breaker_jitter_s=0.0,
            ),
            fault_log=log,
        )
        sim = EventSimulator()
        a = Endpoint(
            "a",
            max_retries=1,
            fault_log=log,
            breaker_for=coordinator.breaker,
        )
        b = Endpoint("b")
        sim.register_node(a)
        sim.register_node(b)
        sim.connect("a", "b", WirelessLink(bandwidth_bps=1e6, latency_s=0.01))
        hole = BlackHole()
        sim.fault_injector = hole

        def report():
            return EnergyReport(
                sender="a", recipient="b", residual_joules=1.0
            )

        # Two messages exhaust their retries: the breaker trips.
        a.transport.send(report())
        a.transport.send(report())
        sim.run()
        assert a.transport.gave_up == 2
        breaker = coordinator.breaker("b")
        assert breaker.state == OPEN
        assert "breaker_open" in [e.kind for e in log.faults]
        assert [e.kind for e in log.faults].count("transport_give_up") == 2

        # While open, sends are refused outright: no retry ladder, no
        # radio traffic, just the blocked counter and the give-up hook.
        storm = a.transport.retransmissions
        a.transport.send(report())
        sim.run()
        assert a.transport.breaker_blocked == 1
        assert a.transport.retransmissions == storm

        # After the reset timeout the half-open probe goes through on a
        # healed link and its ack closes the breaker.
        hole.armed = False
        sim.schedule(
            max(0.0, breaker.retry_at - sim.now) + 0.1,
            lambda: a.transport.send(report()),
        )
        sim.run()
        assert breaker.state == CLOSED
        assert "breaker_closed" in [e.kind for e in log.recoveries]
        assert [m.residual_joules for m in b.processed] == [1.0]

    def test_corruption_discard_forces_retransmit(self, runner1):
        horizon = _spec().horizon_s
        plan = FaultPlan(seed=5).with_data_faults(
            MessageCorruption(
                node_a="lab-cam3",
                rate=0.5,
                start_s=horizon / 3.0,
                end_s=horizon,
            )
        )
        result = run_chaos(_spec(resilience=ON), runner1, plan=plan)
        assert result.corrupted_received > 0
        assert "message_corrupted" in result.fault_kinds()
        # Discarded-without-ack payloads come back via the retry ladder.
        assert result.retransmissions > 0

    def test_stuck_camera_is_quarantined_and_probed(self, runner1):
        horizon = _spec().horizon_s
        plan = FaultPlan(seed=7).with_data_faults(
            SensorFault(
                node_id="lab-cam3",
                stuck=True,
                start_s=horizon / 3.0,
                end_s=horizon,
            )
        )
        result = run_chaos(_spec(resilience=ON), runner1, plan=plan)
        assert result.camera_modes.get("lab-cam3") == CAMERA_QUARANTINED
        assert "camera_quarantined" in result.fault_kinds()
        assert "quarantine_probe" in [
            e.kind for e in result.recovery_events
        ]
        # Quarantine triggered a re-selection over the survivors.
        assert "reselected" in [e.kind for e in result.recovery_events]
        assert "lab-cam3" not in result.final_assignment


# ----------------------------------------------------------------------
# Property: arbitrary fault plans never break the engine
# ----------------------------------------------------------------------
_PROP_SPEC = ChaosSpec(num_frames=4)
_CAMERAS = ("lab-cam1", "lab-cam2", "lab-cam3", "lab-cam4")


@st.composite
def fault_plans(draw):
    """A random seeded FaultPlan mixing every data-plane fault class
    (plus optional uniform loss) over random windows."""
    from repro.faults.plan import CalibrationDrift, ClockSkew

    horizon = _PROP_SPEC.horizon_s
    plan = FaultPlan.uniform_loss(
        draw(st.sampled_from([0.0, 0.1, 0.3])),
        seed=draw(st.integers(0, 2**16)),
    )
    faults = []
    for _ in range(draw(st.integers(0, 3))):
        camera = draw(st.sampled_from(_CAMERAS))
        start = draw(st.floats(0.0, horizon * 0.6))
        window = {
            "start_s": start,
            "end_s": start + draw(st.floats(1.0, horizon)),
        }
        kind = draw(
            st.sampled_from(["sensor", "drift", "skew", "corruption"])
        )
        if kind == "sensor":
            stuck = draw(st.booleans())
            noise = draw(st.floats(0.0, 1.0))
            if not (stuck or noise):
                noise = 0.5
            faults.append(
                SensorFault(
                    camera,
                    noise=noise,
                    false_positive_rate=draw(st.floats(0.0, 4.0)),
                    stuck=stuck,
                    **window,
                )
            )
        elif kind == "drift":
            faults.append(
                CalibrationDrift(
                    camera,
                    score_drift_per_s=draw(
                        st.sampled_from([-0.2, -0.05, 0.05, 0.2])
                    ),
                    **window,
                )
            )
        elif kind == "skew":
            faults.append(
                ClockSkew(
                    camera,
                    skew=draw(st.sampled_from([-0.5, 0.5, 2.0])),
                    **window,
                )
            )
        else:
            faults.append(
                MessageCorruption(
                    node_a=camera,
                    rate=draw(st.floats(0.05, 1.0)),
                    **window,
                )
            )
    return plan.with_data_faults(*faults)


class TestChaosNeverBreaks:
    @settings(max_examples=6, deadline=None)
    @given(plan=fault_plans(), resilience_on=st.booleans())
    def test_random_plans_produce_valid_results(
        self, runner1, plan, resilience_on
    ):
        """Any plan, resilience on or off: the deployment completes,
        the result is well-formed, and no battery reads negative."""
        spec = ChaosSpec(
            num_frames=4, resilience=ON if resilience_on else None
        )
        result = run_chaos(spec, runner1, plan=plan)
        assert result.humans_present >= 0
        assert 0 <= result.humans_detected
        assert 0.0 <= result.detection_rate <= 1.0 or (
            result.humans_present == 0
        )
        assert result.num_decisions >= 1
        for camera, joules in result.battery_by_camera.items():
            assert math.isfinite(joules), camera
            assert joules >= 0.0, (
                f"battery for {camera} went negative: {joules}"
            )
        if resilience_on:
            assert set(result.camera_modes) == set(_CAMERAS)
        # The plan itself survives its own round trip (the CLI path).
        assert FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        ) == plan


# ----------------------------------------------------------------------
# Quarantine-active kill-and-resume
# ----------------------------------------------------------------------
class TestQuarantineKillAndResume:
    def test_resume_with_quarantine_active_is_bit_identical(
        self, runner1, tmp_path
    ):
        """Crash while a camera sits in quarantine; the resumed run
        must finish bit-identically to the uninterrupted one."""
        spec = _spec(resilience=ON)
        plan = FaultPlan(seed=7).with_data_faults(
            SensorFault(
                node_id="lab-cam3",
                stuck=True,
                start_s=spec.horizon_s / 3.0,
                end_s=spec.horizon_s,
            )
        )
        reference = run_chaos(spec, runner1, plan=plan)
        assert reference.camera_modes.get("lab-cam3") == CAMERA_QUARANTINED

        with pytest.raises(SimulatedCrash):
            run_chaos(
                spec,
                runner1,
                plan=plan,
                checkpoint=CheckpointConfig(
                    directory=tmp_path, every=2, crash_after=10
                ),
            )
        # The checkpoint really was taken with the quarantine in force.
        document = json.loads(CheckpointStore(tmp_path).path.read_text())
        recorded = [
            e["kind"] for e in document["state"]["fault_events"]
        ]
        assert "camera_quarantined" in recorded

        resumed = run_chaos(
            spec,
            runner1,
            plan=plan,
            checkpoint=CheckpointConfig(directory=tmp_path, resume=True),
        )
        assert normalize(chaos_result_fingerprint(resumed)) == normalize(
            chaos_result_fingerprint(reference)
        )

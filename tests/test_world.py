"""Tests for the synthetic world: environments, pedestrians, scenes,
rendering."""

import numpy as np
import pytest

from repro.world.environment import CHAP, ENVIRONMENTS, LAB, TERRACE, Environment
from repro.world.pedestrian import (
    Pedestrian,
    RandomWaypointWalker,
    spawn_pedestrians,
)
from repro.world.renderer import Renderer
from repro.world.scene import Scene, make_camera_ring


class TestEnvironment:
    def test_paper_environments_exist(self):
        # The paper's three datasets plus the night extension.
        assert {"lab", "chap", "terrace"} <= set(ENVIRONMENTS)

    def test_resolutions_match_paper(self):
        assert LAB.resolution == (360, 288)
        assert CHAP.resolution == (1024, 768)
        assert TERRACE.resolution == (360, 288)

    def test_chap_is_most_cluttered(self):
        assert CHAP.clutter > LAB.clutter
        assert CHAP.clutter > TERRACE.clutter

    def test_rejects_bad_family(self):
        with pytest.raises(ValueError):
            Environment(
                name="x", family="underwater", indoor=True, brightness=0.5,
                contrast=0.5, clutter=0.1, texture_scale=10, width=100,
                height=100,
            )

    def test_rejects_out_of_range_brightness(self):
        with pytest.raises(ValueError):
            Environment(
                name="x", family="outdoor", indoor=False, brightness=1.5,
                contrast=0.5, clutter=0.1, texture_scale=10, width=100,
                height=100,
            )

    def test_megapixels(self):
        assert LAB.megapixels == pytest.approx(0.10368)


class TestPedestrians:
    def test_spawn_inside_bounds(self, rng):
        walkers = spawn_pedestrians(10, (0, 0, 5, 5), rng)
        assert len(walkers) == 10
        for w in walkers:
            x, y = w.pedestrian.position
            assert 0 <= x <= 5 and 0 <= y <= 5

    def test_ids_unique(self, rng):
        walkers = spawn_pedestrians(8, (0, 0, 5, 5), rng)
        ids = {w.pedestrian.person_id for w in walkers}
        assert len(ids) == 8

    def test_rejects_negative_count(self, rng):
        with pytest.raises(ValueError):
            spawn_pedestrians(-1, (0, 0, 5, 5), rng)

    def test_walker_moves(self, rng):
        person = Pedestrian(person_id=0, position=np.array([2.0, 2.0]))
        walker = RandomWaypointWalker(
            person, bounds=(0, 0, 5, 5), speed=1.0, pause_frames=0
        )
        start = person.footprint()
        for _ in range(50):
            walker.step(0.1, rng)
        assert np.linalg.norm(person.position - start) > 0.0

    def test_walker_stays_in_bounds(self, rng):
        person = Pedestrian(person_id=0, position=np.array([2.0, 2.0]))
        walker = RandomWaypointWalker(
            person, bounds=(0, 0, 5, 5), speed=2.0, pause_frames=0
        )
        for _ in range(500):
            walker.step(0.1, rng)
            x, y = person.position
            assert -0.01 <= x <= 5.01 and -0.01 <= y <= 5.01

    def test_step_distance_bounded_by_speed(self, rng):
        person = Pedestrian(person_id=0, position=np.array([1.0, 1.0]))
        walker = RandomWaypointWalker(
            person, bounds=(0, 0, 8, 8), speed=1.5, pause_frames=0
        )
        for _ in range(100):
            before = person.footprint()
            walker.step(0.04, rng)
            moved = np.linalg.norm(person.position - before)
            assert moved <= 1.5 * 0.04 + 1e-9


class TestScene:
    def test_deterministic_replay(self):
        a = Scene(LAB, num_people=4, seed=3)
        b = Scene(LAB, num_people=4, seed=3)
        for _ in range(30):
            a.step()
            b.step()
        for pa, pb in zip(a.pedestrians, b.pedestrians):
            np.testing.assert_allclose(pa.position, pb.position)

    def test_frame_index_advances(self):
        scene = Scene(LAB, num_people=2)
        assert scene.frame_index == 0
        scene.step()
        assert scene.frame_index == 1

    def test_run_to_frame(self):
        scene = Scene(LAB, num_people=2)
        scene.run_to_frame(17)
        assert scene.frame_index == 17

    def test_cannot_rewind(self):
        scene = Scene(LAB, num_people=2)
        scene.run_to_frame(5)
        with pytest.raises(ValueError):
            scene.run_to_frame(3)

    def test_landmarks_inside_bounds(self):
        scene = Scene(LAB, num_people=2, bounds=(0, 0, 8, 8))
        assert scene.landmarks.shape[1] == 2
        assert np.all(scene.landmarks > -1.0)
        assert np.all(scene.landmarks < 9.0)


class TestCameraRing:
    def test_four_cameras_have_distinct_poses(self):
        cams = make_camera_ring(LAB, num_cameras=4)
        positions = {(c.pose.x, c.pose.y) for c in cams}
        assert len(positions) == 4

    def test_cameras_see_region_center(self):
        cams = make_camera_ring(LAB, num_cameras=4, bounds=(0, 0, 8, 8))
        center = np.array([4.0, 4.0, 0.9])
        for cam in cams:
            assert cam.is_visible(center)

    def test_rejects_zero_cameras(self):
        with pytest.raises(ValueError):
            make_camera_ring(LAB, num_cameras=0)

    def test_scaled_ring_extends_standard_geometry(self):
        """Rings beyond eight cameras keep the first eight placements
        unchanged, so scaled-up datasets extend rather than replace
        the evaluation geometry."""
        base = make_camera_ring(LAB, num_cameras=8)
        scaled = make_camera_ring(LAB, num_cameras=16)
        assert len(scaled) == 16
        for small, big in zip(base, scaled):
            assert (small.pose.x, small.pose.y) == (big.pose.x, big.pose.y)
        positions = {(c.pose.x, c.pose.y) for c in scaled}
        assert len(positions) == 16

    def test_resolution_follows_environment(self):
        cams = make_camera_ring(CHAP, num_cameras=2)
        assert cams[0].intrinsics.resolution == (1024, 768)


class TestRenderer:
    @pytest.fixture()
    def rendered(self):
        scene = Scene(LAB, num_people=5, seed=7)
        camera = make_camera_ring(LAB, num_cameras=1)[0]
        renderer = Renderer(scene, camera)
        scene.run_to_frame(10)
        return renderer.render()

    def test_image_shape_and_range(self, rendered):
        assert rendered.image.ndim == 2
        assert rendered.image.min() >= 0.0
        assert rendered.image.max() <= 1.0

    def test_objects_have_valid_bboxes(self, rendered):
        for view in rendered.objects:
            _, _, w, h = view.bbox
            assert w > 0 and h > 0

    def test_occlusion_in_unit_interval(self, rendered):
        for view in rendered.objects:
            assert 0.0 <= view.occlusion <= 1.0

    def test_bbox_bottom_matches_foot_projection(self):
        scene = Scene(LAB, num_people=5, seed=7)
        camera = make_camera_ring(LAB, num_cameras=1)[0]
        renderer = Renderer(scene, camera)
        scene.run_to_frame(5)
        obs = renderer.render()
        for view in obs.objects:
            bx, by, bw, bh = view.bbox
            foot = np.array([view.ground_xy[0], view.ground_xy[1], 0.0])
            uv = camera.project(foot)
            assert bx + bw / 2 == pytest.approx(uv[0], abs=1e-6)
            assert by + bh == pytest.approx(uv[1], abs=1e-6)

    def test_nearer_person_occludes_farther(self):
        scene = Scene(LAB, num_people=0, seed=1)
        camera = make_camera_ring(LAB, num_cameras=1)[0]
        from repro.world.pedestrian import Pedestrian, RandomWaypointWalker

        # Two people on the camera's line of sight, one behind the other.
        near = Pedestrian(person_id=0, position=np.array([2.0, 2.0]))
        far = Pedestrian(person_id=1, position=np.array([3.0, 3.0]))
        scene.walkers = [
            RandomWaypointWalker(near, bounds=scene.bounds),
            RandomWaypointWalker(far, bounds=scene.bounds),
        ]
        obs = Renderer(scene, camera).render()
        by_id = {v.person_id: v for v in obs.objects}
        assert by_id[0].occlusion == 0.0
        assert by_id[1].occlusion > 0.1

    def test_clutter_scales_with_environment(self):
        scene_lab = Scene(LAB, num_people=1)
        scene_chap = Scene(CHAP, num_people=1)
        cam_lab = make_camera_ring(LAB, num_cameras=1)[0]
        cam_chap = make_camera_ring(CHAP, num_cameras=1)[0]
        r_lab = Renderer(scene_lab, cam_lab)
        r_chap = Renderer(scene_chap, cam_chap)
        assert len(r_chap.clutter_regions) > len(r_lab.clutter_regions)

    def test_same_camera_background_is_stable(self):
        scene = Scene(LAB, num_people=0, seed=2)
        camera = make_camera_ring(LAB, num_cameras=1)[0]
        renderer = Renderer(scene, camera, noise_sigma=0.0)
        img1 = renderer.render().image
        scene.step()
        img2 = renderer.render().image
        np.testing.assert_allclose(img1, img2, atol=1e-6)

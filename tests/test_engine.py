"""Unit tests for the deployment-engine package."""

import numpy as np
import pytest

from repro.engine import (
    AllBestPolicy,
    CoordinationPolicy,
    DeploymentEngine,
    DeploymentSpec,
    FullEECSPolicy,
    IdealEnvironment,
    ProcessPoolDetectionExecutor,
    SerialDetectionExecutor,
    SimulationClock,
    SubsetPolicy,
    available_policies,
    make_executor,
    register_policy,
    resolve_policy,
    validate_policy_name,
)
from repro.engine.policy import _REGISTRY, RoundPlan


class TestSimulationClock:
    def test_frame_cadence(self):
        clock = SimulationClock(seconds_per_frame=2.0)
        assert clock.now_s == 0.0
        assert clock.time_at_frame(1000) == 2000.0
        assert clock.advance_to_frame(1500) == 3000.0
        assert clock.now_s == 3000.0

    def test_reset(self):
        clock = SimulationClock()
        clock.advance_to_frame(100)
        clock.reset()
        assert clock.now_s == 0.0


class TestExecutors:
    def test_make_executor_selects_backend(self):
        assert isinstance(make_executor(0), SerialDetectionExecutor)
        assert isinstance(make_executor(1), SerialDetectionExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ProcessPoolDetectionExecutor)
        assert pool.workers == 3
        pool.close()

    def test_make_executor_by_name(self):
        from repro.engine import SharedMemoryDetectionExecutor

        assert isinstance(
            make_executor(1, backend="serial"), SerialDetectionExecutor
        )
        pool = make_executor(2, backend="pool")
        assert isinstance(pool, ProcessPoolDetectionExecutor)
        pool.close()
        shm = make_executor(2, backend="shm")
        assert isinstance(shm, SharedMemoryDetectionExecutor)
        shm.close()

    def test_unknown_backend_lists_valid_names(self):
        from repro.engine import EXECUTOR_BACKENDS, validate_executor_name

        with pytest.raises(ValueError) as excinfo:
            validate_executor_name("threads")
        message = str(excinfo.value)
        assert "threads" in message
        for name in EXECUTOR_BACKENDS:
            assert name in message

    def test_backend_worker_cross_checks(self):
        with pytest.raises(ValueError, match="workers"):
            make_executor(4, backend="serial")
        with pytest.raises(ValueError, match="workers"):
            make_executor(1, backend="pool")
        with pytest.raises(ValueError, match="workers"):
            make_executor(1, backend="shm")

    def test_pool_rejects_single_worker(self):
        with pytest.raises(ValueError):
            ProcessPoolDetectionExecutor(1)

    def test_serial_execute_matches_run_batch(self, runner1):
        from repro.detection.batch import DetectionBatch, DetectionTask, run_batch

        engine = runner1.engine
        record = engine.dataset.frames(1000, 1001)[0]
        tasks = tuple(
            DetectionTask(
                algorithm=algorithm,
                observation=record.observation(camera_id),
                entropy=(2017, record.frame_index, idx),
                threshold=None,
            )
            for idx, (camera_id, algorithm) in enumerate(
                (c, a)
                for c in engine.dataset.camera_ids[:2]
                for a in sorted(engine.detectors)
            )
        )
        batch = DetectionBatch(tasks=tasks)
        executor = SerialDetectionExecutor()
        direct = run_batch(engine.detectors, tasks)
        executed = executor.execute(batch, engine.detectors)

        def signature(results):
            return [
                [
                    (d.bbox, d.camera_id, d.algorithm, d.score,
                     tuple(d.color_feature))
                    for d in dets
                ]
                for dets in results
            ]

        assert signature(executed) == signature(direct)


class TestPolicyRegistry:
    def test_all_registered(self):
        assert available_policies() == (
            "all_best", "cell", "cell_full", "fixed", "full", "peer",
            "predictive", "subset",
        )

    def test_unknown_name_lists_valid_policies(self):
        with pytest.raises(ValueError) as excinfo:
            validate_policy_name("bestest")
        message = str(excinfo.value)
        assert "bestest" in message
        for name in available_policies():
            assert repr(name) in message

    def test_resolve_by_name_and_instance(self):
        policy = resolve_policy("full")
        assert isinstance(policy, FullEECSPolicy)
        assert resolve_policy(policy) is policy

    def test_full_is_subset_with_downgrade(self):
        assert issubclass(FullEECSPolicy, SubsetPolicy)
        assert FullEECSPolicy.enable_downgrade
        assert not SubsetPolicy.enable_downgrade

    def test_fixed_requires_assignment(self):
        with pytest.raises(ValueError):
            resolve_policy("fixed").validate(None)
        resolve_policy("fixed").validate({"cam": "HOG"})

    def test_new_policy_needs_only_registration(self):
        """Adding a strategy = subclass + register, no engine edits."""

        @register_policy
        class EveryOtherFramePolicy(AllBestPolicy):
            name = "every_other"

        try:
            assert "every_other" in available_policies()
            assert isinstance(
                resolve_policy("every_other"), EveryOtherFramePolicy
            )
        finally:
            del _REGISTRY["every_other"]

    def test_engine_loop_has_no_mode_string_branching(self):
        """The engine core never compares against policy names."""
        import repro.engine.core as core
        from pathlib import Path

        source = Path(core.__file__).read_text()
        for name in available_policies():
            assert f'== "{name}"' not in source
            assert f"== '{name}'" not in source


class TestRoundPlanning:
    def test_all_best_single_round(self, runner1):
        engine = runner1.engine
        records = engine.dataset.frames(1000, 1300, only_ground_truth=True)
        plans = AllBestPolicy().plan_rounds(engine, records, 2.0, None)
        assert len(plans) == 1
        assert plans[0].assess_count == 0
        assert len(plans[0].static_assignments) == len(records)

    def test_subset_partitions_by_recalibration_interval(self, runner1):
        engine = runner1.engine
        records = engine.dataset.frames(1000, 2500, only_ground_truth=True)
        plans = SubsetPolicy().plan_rounds(engine, records, 2.0, None)
        per_round = engine.gt_frames_per_round
        assert per_round == 20  # 500-frame interval / gt every 25
        assert [len(p.records) for p in plans] == [20, 20, 20]
        assert all(
            p.assess_count == engine.gt_frames_per_assessment for p in plans
        )


class TestDeploymentSpec:
    def test_validates_policy_at_construction(self):
        with pytest.raises(ValueError, match="valid policies are"):
            DeploymentSpec(dataset_number=1, policy="warp")

    def test_validates_fixed_assignment_at_construction(self):
        with pytest.raises(ValueError, match="assignment"):
            DeploymentSpec(dataset_number=1, policy="fixed")
        DeploymentSpec(
            dataset_number=1,
            policy="fixed",
            assignment=(("lab-cam1", "HOG"),),
        )

    def test_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            DeploymentSpec(dataset_number=1, workers=0)

    def test_validates_executor_at_construction(self):
        with pytest.raises(ValueError, match="valid backends are"):
            DeploymentSpec(dataset_number=1, executor="threads")
        with pytest.raises(ValueError, match="workers"):
            DeploymentSpec(dataset_number=1, executor="shm", workers=1)
        with pytest.raises(ValueError, match="workers"):
            DeploymentSpec(dataset_number=1, executor="serial", workers=4)
        DeploymentSpec(dataset_number=1, executor="shm", workers=2)
        DeploymentSpec(dataset_number=1, executor="serial")

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = DeploymentSpec(dataset_number=1, policy="subset", budget=2.0)
        assert hash(spec) == hash(
            DeploymentSpec(dataset_number=1, policy="subset", budget=2.0)
        )
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestEngineSeams:
    def test_ideal_environment_matches_direct_run(self, runner1):
        engine = runner1.engine
        direct = engine.run("all_best", budget=2.0, start=1000, end=1200)
        deployed = engine.deploy(
            IdealEnvironment(
                policy="all_best", budget=2.0, start=1000, end=1200
            )
        )
        assert vars(deployed) == vars(direct)

    def test_custom_executor_backend_is_bit_identical(self, runner1):
        """A user-supplied backend slots in without engine changes."""

        from repro.detection.batch import run_batch

        class ReversingExecutor(SerialDetectionExecutor):
            # Executes back-to-front, returns in order: order-dependence
            # in the engine would surface as a result drift.
            def execute(self, batch, detectors):
                results = [
                    run_batch(detectors, [task])[0]
                    for task in reversed(batch.tasks)
                ]
                results.reverse()
                return results

        baseline = runner1.engine.run(
            "full", budget=2.0, start=1000, end=1300
        )
        swapped = DeploymentEngine(
            runner1.engine.context, executor=ReversingExecutor()
        ).run("full", budget=2.0, start=1000, end=1300)
        assert vars(swapped) == vars(baseline)

    def test_shared_context_caches_by_config(self):
        from repro.core.config import EECSConfig
        from repro.engine import shared_context

        base = shared_context(1)
        assert shared_context(1) is base
        assert shared_context(1, train_seed=2018) is base
        other = shared_context(1, config=EECSConfig(gamma_n=0.9))
        assert other is not base

    def test_facade_library_assignment_reaches_engine(self, dataset1):
        from repro.core.runner import SimulationRunner

        runner = SimulationRunner.__new__(SimulationRunner)
        runner.workers = 1
        runner._engine = DeploymentEngine.__new__(DeploymentEngine)
        runner._engine.library = "old"
        runner.library = "new"
        assert runner._engine.library == "new"

"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.detection.base import BoundingBox
from repro.detection.metrics import f_score
from repro.domain_adaptation.gfk import geodesic_flow_kernel
from repro.domain_adaptation.manifold import orthonormalize, principal_angles
from repro.energy.battery import Battery, frame_budget
from repro.geometry.homography import Homography, apply_homography
from repro.reid.fusion import fuse_probabilities

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
unit_floats = st.floats(min_value=0.0, max_value=1.0)
positive_floats = st.floats(min_value=1e-3, max_value=1e6)


class TestFusionProperties:
    @given(st.lists(unit_floats, min_size=1, max_size=8))
    def test_fused_probability_in_unit_interval(self, probs):
        fused = fuse_probabilities(probs)
        assert 0.0 <= fused <= 1.0 + 1e-12

    @given(st.lists(unit_floats, min_size=1, max_size=8))
    def test_fusion_at_least_max_member(self, probs):
        """Eq. 6 never decreases confidence below the best camera."""
        assert fuse_probabilities(probs) >= max(probs) - 1e-12

    @given(st.lists(unit_floats, min_size=1, max_size=6), unit_floats)
    def test_fusion_monotone_in_added_camera(self, probs, extra):
        assert (
            fuse_probabilities(probs + [extra])
            >= fuse_probabilities(probs) - 1e-12
        )

    @given(st.lists(unit_floats, min_size=2, max_size=6))
    def test_fusion_permutation_invariant(self, probs):
        assert fuse_probabilities(probs) == pytest.approx(
            fuse_probabilities(list(reversed(probs)))
        )


class TestFScoreProperties:
    @given(unit_floats, unit_floats)
    def test_bounded_by_min_and_max(self, recall, precision):
        f = f_score(recall, precision)
        assert 0.0 <= f <= 1.0
        assert f <= max(recall, precision) + 1e-12
        if recall > 0 and precision > 0:
            assert f >= min(recall, precision) - 1e-12

    @given(unit_floats)
    def test_equal_inputs_fixed_point(self, value):
        assert f_score(value, value) == pytest.approx(value)

    @given(unit_floats, unit_floats)
    def test_symmetric(self, a, b):
        assert f_score(a, b) == pytest.approx(f_score(b, a))


class TestBoundingBoxProperties:
    boxes = st.tuples(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=0.1, max_value=50),
        st.floats(min_value=0.1, max_value=50),
    )

    @given(boxes, boxes)
    def test_iou_symmetric_and_bounded(self, a, b):
        box_a, box_b = BoundingBox(*a), BoundingBox(*b)
        iou = box_a.iou(box_b)
        assert 0.0 <= iou <= 1.0 + 1e-12
        assert iou == pytest.approx(box_b.iou(box_a))

    @given(boxes)
    def test_self_iou_is_one(self, a):
        box = BoundingBox(*a)
        assert box.iou(box) == pytest.approx(1.0)


class TestHomographyProperties:
    @given(
        hnp.arrays(
            np.float64,
            (3, 3),
            elements=st.floats(min_value=-0.2, max_value=0.2),
        ),
        hnp.arrays(
            np.float64,
            (6, 2),
            elements=st.floats(min_value=-50, max_value=50),
        ),
    )
    @settings(max_examples=30)
    def test_round_trip(self, perturbation, points):
        matrix = np.eye(3) + perturbation
        if abs(np.linalg.det(matrix)) < 1e-3:
            return  # skip near-singular draws
        h = Homography(matrix)
        mapped = h.apply(points)
        if np.any(~np.isfinite(mapped)):
            return  # points at infinity
        back = h.inverse().apply(mapped)
        np.testing.assert_allclose(back, points, atol=1e-6)

    @given(
        hnp.arrays(
            np.float64,
            (4, 2),
            elements=st.floats(min_value=-10, max_value=10),
        )
    )
    @settings(max_examples=30)
    def test_identity_fixes_points(self, points):
        np.testing.assert_allclose(
            apply_homography(np.eye(3), points), points, atol=1e-12
        )


class TestGfkProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_kernel_psd_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        alpha = int(rng.integers(6, 20))
        beta = int(rng.integers(1, min(5, alpha // 2 + 1)))
        x = orthonormalize(rng.normal(size=(alpha, beta)))
        z = orthonormalize(rng.normal(size=(alpha, beta)))
        w = geodesic_flow_kernel(x, z).matrix()
        np.testing.assert_allclose(w, w.T, atol=1e-9)
        assert np.linalg.eigvalsh(w).min() > -1e-9

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_self_distance_zero(self, seed):
        rng = np.random.default_rng(seed)
        x = orthonormalize(rng.normal(size=(12, 3)))
        kernel = geodesic_flow_kernel(x, x)
        t = rng.normal(size=(4, 12))
        from repro.domain_adaptation.similarity import kernel_distance_matrix

        d = kernel_distance_matrix(kernel, t, t)
        assert np.all(np.diag(d) < 1e-8)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_principal_angles_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = orthonormalize(rng.normal(size=(15, 4)))
        z = orthonormalize(rng.normal(size=(15, 4)))
        angles = principal_angles(x, z)
        assert np.all(angles >= -1e-12)
        assert np.all(angles <= np.pi / 2 + 1e-12)


class TestBatteryProperties:
    @given(
        positive_floats,
        st.lists(st.floats(min_value=0, max_value=1e5), max_size=20),
    )
    def test_never_negative_residual(self, capacity, draws):
        battery = Battery(capacity_joules=capacity)
        for amount in draws:
            battery.draw(amount)
        assert battery.residual >= 0.0
        assert battery.consumed <= capacity + 1e-9

    @given(positive_floats, positive_floats, positive_floats)
    def test_frame_budget_scales_linearly(self, residual, op_time, cadence):
        budget = frame_budget(residual, op_time, cadence)
        double = frame_budget(2 * residual, op_time, cadence)
        assert double == pytest.approx(2 * budget, rel=1e-9)

    @given(positive_floats, positive_floats, positive_floats)
    def test_budget_times_frames_equals_residual(
        self, residual, op_time, cadence
    ):
        budget = frame_budget(residual, op_time, cadence)
        frames = op_time / cadence
        assert budget * frames == pytest.approx(residual, rel=1e-9)

"""Tests for homography estimation and RANSAC fitting."""

import math

import numpy as np
import pytest

from repro.geometry.camera import CameraIntrinsics, CameraPose, PinholeCamera
from repro.geometry.homography import (
    Homography,
    HomographyError,
    apply_homography,
    estimate_homography,
    homography_between_cameras,
)
from repro.geometry.ransac import ransac_homography


def random_homography(rng) -> np.ndarray:
    h = np.eye(3) + 0.1 * rng.normal(size=(3, 3))
    h[2, 2] = 1.0
    return h


class TestEstimateHomography:
    def test_recovers_identity(self, rng):
        pts = rng.uniform(0, 100, size=(8, 2))
        h = estimate_homography(pts, pts)
        np.testing.assert_allclose(h, np.eye(3), atol=1e-8)

    def test_recovers_known_mapping(self, rng):
        true_h = random_homography(rng)
        src = rng.uniform(0, 100, size=(10, 2))
        dst = apply_homography(true_h, src)
        est = estimate_homography(src, dst)
        np.testing.assert_allclose(est, true_h / true_h[2, 2], atol=1e-6)

    def test_exact_with_four_points(self, rng):
        true_h = random_homography(rng)
        src = np.array([[0, 0], [100, 0], [100, 100], [0, 100]], dtype=float)
        dst = apply_homography(true_h, src)
        est = estimate_homography(src, dst)
        np.testing.assert_allclose(
            apply_homography(est, src), dst, atol=1e-6
        )

    def test_rejects_too_few_points(self):
        pts = np.zeros((3, 2))
        with pytest.raises(HomographyError):
            estimate_homography(pts, pts)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(HomographyError):
            estimate_homography(np.zeros((5, 2)), np.zeros((4, 2)))

    def test_rejects_coincident_points(self):
        pts = np.ones((5, 2))
        with pytest.raises(HomographyError):
            estimate_homography(pts, pts)


class TestHomographyClass:
    def test_inverse_round_trip(self, rng):
        h = Homography(random_homography(rng))
        pts = rng.uniform(0, 50, size=(6, 2))
        back = h.inverse().apply(h.apply(pts))
        np.testing.assert_allclose(back, pts, atol=1e-8)

    def test_compose_applies_right_first(self, rng):
        a = Homography(random_homography(rng))
        b = Homography(random_homography(rng))
        pt = np.array([3.0, 4.0])
        np.testing.assert_allclose(
            a.compose(b).apply(pt), a.apply(b.apply(pt)), atol=1e-8
        )

    def test_identity(self):
        pt = np.array([5.0, 6.0])
        np.testing.assert_allclose(Homography.identity().apply(pt), pt)

    def test_rejects_singular_matrix(self):
        with pytest.raises(HomographyError):
            Homography(np.zeros((3, 3)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(HomographyError):
            Homography(np.eye(4))

    def test_transfer_error_zero_for_exact(self, rng):
        h = Homography(random_homography(rng))
        src = rng.uniform(0, 50, size=(5, 2))
        dst = h.apply(src)
        np.testing.assert_allclose(h.transfer_error(src, dst), 0, atol=1e-9)

    def test_from_points(self, rng):
        true_h = Homography(random_homography(rng))
        src = rng.uniform(0, 100, size=(12, 2))
        dst = true_h.apply(src)
        est = Homography.from_points(src, dst)
        np.testing.assert_allclose(est.apply(src), dst, atol=1e-6)


class TestBetweenCameras:
    def _camera(self, yaw, x, y):
        return PinholeCamera(
            CameraIntrinsics(focal_px=320, width=360, height=288),
            CameraPose(x=x, y=y, z=2.5, yaw=yaw, pitch=0.25),
        )

    def test_transfers_ground_points(self):
        cam_a = self._camera(math.pi / 4, -2, -2)
        cam_b = self._camera(3 * math.pi / 4, 10, -2)
        h = homography_between_cameras(cam_a, cam_b)
        ground = np.array([4.0, 4.0])
        uv_a = cam_a.project_ground(ground)
        uv_b = cam_b.project_ground(ground)
        np.testing.assert_allclose(h.apply(uv_a), uv_b, atol=1e-6)


class TestRansac:
    def test_fits_despite_outliers(self, rng):
        true_h = random_homography(rng)
        src = rng.uniform(0, 200, size=(40, 2))
        dst = apply_homography(true_h, src)
        # Corrupt 25% of correspondences.
        outliers = rng.choice(40, size=10, replace=False)
        dst[outliers] += rng.uniform(30, 80, size=(10, 2))
        result = ransac_homography(src, dst, threshold=2.0, rng=rng)
        assert result.num_inliers >= 28
        inlier_mask = np.ones(40, dtype=bool)
        inlier_mask[outliers] = False
        errors = result.homography.transfer_error(
            src[inlier_mask], dst[inlier_mask]
        )
        assert errors.max() < 2.0

    def test_clean_data_all_inliers(self, rng):
        true_h = random_homography(rng)
        src = rng.uniform(0, 100, size=(20, 2))
        dst = apply_homography(true_h, src)
        result = ransac_homography(src, dst, threshold=1.0, rng=rng)
        assert result.num_inliers == 20
        assert result.inlier_rmse < 1e-6

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(HomographyError):
            ransac_homography(np.zeros((3, 2)), np.zeros((3, 2)), rng=rng)

    def test_noisy_inliers_fit_within_threshold(self, rng):
        true_h = random_homography(rng)
        src = rng.uniform(0, 200, size=(30, 2))
        dst = apply_homography(true_h, src) + rng.normal(
            scale=0.3, size=(30, 2)
        )
        result = ransac_homography(src, dst, threshold=3.0, rng=rng)
        assert result.num_inliers >= 25
        assert result.inlier_rmse < 3.0

"""End-to-end integration: offline training -> persistence -> a fresh
controller -> selection -> deployment, as a field workflow would."""

import numpy as np
import pytest

from repro.core.config import EECSConfig
from repro.core.controller import EECSController
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.energy.meter import EnergyMeter
from repro.persistence import load_library, save_library


class TestFieldWorkflow:
    @pytest.fixture(scope="class")
    def reloaded_controller(self, runner1, tmp_path_factory):
        """Save the trained library, reload it, and build a brand-new
        controller around it (as a deployment server restart would)."""
        path = tmp_path_factory.mktemp("field") / "library.json"
        save_library(runner1.library, path)
        library = load_library(path)

        env = runner1.dataset.environment
        controller = EECSController(
            EECSConfig(), library, runner1.matcher
        )
        for camera_id in runner1.dataset.camera_ids:
            controller.register_camera(
                camera_id,
                processing_model=runner1.energy_model,
                communication_model=CommunicationEnergyModel(
                    width=env.width, height=env.height
                ),
                battery=Battery(),
            )
            controller.assign_training_item(camera_id, f"T-{camera_id}")
        return controller

    def test_reloaded_profiles_match(self, runner1, reloaded_controller):
        for camera_id in runner1.dataset.camera_ids:
            original = runner1.library.get(f"T-{camera_id}")
            restored = reloaded_controller.library.get(f"T-{camera_id}")
            for algorithm in original.algorithms:
                a = original.profile(algorithm)
                b = restored.profile(algorithm)
                assert a.threshold == pytest.approx(b.threshold)
                assert a.f_score == pytest.approx(b.f_score)

    def test_reloaded_controller_selects(self, runner1, reloaded_controller):
        """The restored controller reproduces the original's decision
        on the same assessment metadata."""
        records = runner1.dataset.frames(
            1000, 1200, only_ground_truth=True
        )[:3]
        meter = EnergyMeter()
        assessment = runner1._collect_assessment(records, 2.0, meter)
        overrides = {c: 2.0 for c in runner1.dataset.camera_ids}

        original = runner1.controller.select(
            assessment, budget_overrides=overrides
        )
        restored = reloaded_controller.select(
            assessment, budget_overrides=overrides
        )
        assert restored.assignment == original.assignment
        assert restored.baseline.num_objects == pytest.approx(
            original.baseline.num_objects
        )

    def test_reloaded_calibrators_fill_probabilities(
        self, runner1, reloaded_controller
    ):
        from repro.detection.base import BoundingBox, Detection

        camera_id = runner1.dataset.camera_ids[0]
        det = Detection(
            bbox=BoundingBox(0, 0, 10, 20),
            score=0.8,
            camera_id=camera_id,
            frame_index=0,
            algorithm="HOG",
        )
        reloaded_controller.calibrate_probabilities(camera_id, [det])
        assert 0.0 <= det.probability <= 1.0
        assert not np.isnan(det.probability)

"""Tests for the lifetime simulation and the adaptive deployment."""

import pytest

from repro.core.lifetime import lifetime_extension, simulate_lifetime


class TestLifetime:
    @pytest.fixture(scope="class")
    def comparison(self, runner1):
        return lifetime_extension(
            runner1, battery_joules=400.0, budget=2.0
        )

    def test_eecs_outlives_baseline(self, comparison):
        assert (
            comparison["full"].frames_survived
            >= comparison["all_best"].frames_survived
        )

    def test_lifetime_detects_humans(self, comparison):
        for result in comparison.values():
            assert result.humans_detected > 0

    def test_energy_bounded_by_batteries(self, comparison):
        for result in comparison.values():
            assert result.energy_consumed <= 4 * 400.0 + 1e-6

    def test_deaths_recorded_when_batteries_drain(self, runner1):
        result = simulate_lifetime(
            runner1,
            mode="all_best",
            battery_joules=150.0,
            budget=2.0,
            max_passes=10,
        )
        # A 150 J battery dies within two passes of ~86 J each.
        assert len(result.deaths) >= 1

    def test_rejects_bad_inputs(self, runner1):
        with pytest.raises(ValueError):
            simulate_lifetime(runner1, "warp", 100.0, 2.0)
        with pytest.raises(ValueError):
            simulate_lifetime(runner1, "full", -5.0, 2.0)


class TestAdaptiveDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        from repro.core.adaptive import AdaptiveDeployment

        return AdaptiveDeployment(
            dataset_numbers=(1, 2),
            window_frames=10,
            vocabulary_size=200,
        )

    @pytest.fixture(scope="class")
    def scenario(self, deployment):
        return deployment.run_scenario()

    def test_matches_correct_environment(self, scenario):
        """The GFK comparison identifies each phase's own training
        item — the property Table V establishes."""
        for phase in scenario:
            assert phase.correct_match, (
                phase.dataset_number, phase.matched_item,
            )

    def test_chap_phase_selects_acf(self, scenario):
        by_dataset = {p.dataset_number: p for p in scenario}
        assert by_dataset[2].algorithm == "ACF"

    def test_lsvm_excluded(self, scenario):
        for phase in scenario:
            assert phase.algorithm != "LSVM"

    def test_phase_accuracy_reasonable(self, scenario):
        for phase in scenario:
            assert phase.counts.f_score > 0.4

    def test_energy_positive(self, scenario):
        for phase in scenario:
            assert phase.energy_joules > 0

    def test_unknown_phase_raises(self, deployment):
        with pytest.raises(KeyError):
            deployment.run_phase(3)

    def test_needs_two_environments(self):
        from repro.core.adaptive import AdaptiveDeployment

        with pytest.raises(ValueError):
            AdaptiveDeployment(dataset_numbers=(1,))

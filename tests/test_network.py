"""Tests for the network substrate: links, simulator, messages, nodes."""

import numpy as np
import pytest

from repro.network.link import WirelessLink
from repro.network.messages import (
    AlgorithmAssignment,
    AssessmentRequest,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
    Message,
)
from repro.network.simulator import EventSimulator, Node


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []
        self.transmitted_bytes = 0

    def receive(self, message):
        self.received.append(message)

    def on_transmit(self, num_bytes, energy_joules):
        self.transmitted_bytes += num_bytes


@pytest.fixture()
def pair():
    sim = EventSimulator()
    a, b = Recorder("a"), Recorder("b")
    sim.register_node(a)
    sim.register_node(b)
    sim.connect("a", "b", WirelessLink(bandwidth_bps=1e6, latency_s=0.01))
    return sim, a, b


class TestWirelessLink:
    def test_transfer_time_includes_latency(self):
        link = WirelessLink(bandwidth_bps=8e6, latency_s=0.01)
        # 1000 bytes = 8000 bits at 8 Mbps = 1 ms + 10 ms latency.
        assert link.transfer_time(1000) == pytest.approx(0.011)

    def test_transfer_energy_linear(self):
        link = WirelessLink()
        assert link.transfer_energy(2000) == pytest.approx(
            2 * link.transfer_energy(1000)
        )

    def test_weak_link_more_energy(self):
        good = WirelessLink()
        weak = WirelessLink(link_quality=2.0)
        assert weak.transfer_energy(100) == pytest.approx(
            2 * good.transfer_energy(100)
        )

    def test_bandwidth_estimate(self):
        link = WirelessLink(bandwidth_bps=1e6, latency_s=0.0)
        measured = link.transfer_time(12500)  # 100 kbit at 1 Mbps = 0.1 s
        assert link.estimate_bandwidth(12500, measured) == pytest.approx(1e6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WirelessLink(bandwidth_bps=0)
        with pytest.raises(ValueError):
            WirelessLink(link_quality=0.5)


class TestMessages:
    def test_feature_upload_size(self):
        msg = FeatureUpload(
            sender="a", recipient="b", features=np.zeros((10, 4180))
        )
        assert msg.size_bytes == 64 + 10 * 16720

    def test_metadata_size_172_per_object(self):
        from repro.detection.base import BoundingBox, Detection

        dets = [
            Detection(
                bbox=BoundingBox(0, 0, 1, 1),
                score=0.5,
                camera_id="a",
                frame_index=0,
                algorithm="HOG",
            )
            for _ in range(3)
        ]
        msg = DetectionMetadata(
            sender="a", recipient="b", detections=dets
        )
        assert msg.size_bytes == 64 + 3 * 172

    def test_assignment_active_flag(self):
        active = AlgorithmAssignment(sender="a", recipient="b", algorithm="HOG")
        idle = AlgorithmAssignment(sender="a", recipient="b", algorithm=None)
        assert active.active
        assert not idle.active

    def test_kind(self):
        msg = EnergyReport(sender="a", recipient="b")
        assert msg.kind == "EnergyReport"


class TestEventSimulator:
    def test_events_run_in_time_order(self, pair):
        sim, a, b = pair
        order = []
        sim.schedule(0.3, lambda: order.append("late"))
        sim.schedule(0.1, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_message_delivery(self, pair):
        sim, a, b = pair
        a.send(EnergyReport(sender="a", recipient="b", residual_joules=5.0))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].residual_joules == 5.0
        assert sim.delivered_messages == 1

    def test_sender_charged_transmit_bytes(self, pair):
        sim, a, b = pair
        msg = EnergyReport(sender="a", recipient="b")
        a.send(msg)
        sim.run()
        assert a.transmitted_bytes == msg.size_bytes

    def test_delivery_delayed_by_transfer_time(self, pair):
        sim, a, b = pair
        a.send(EnergyReport(sender="a", recipient="b"))
        sim.run()
        assert sim.now >= 0.01  # at least the link latency

    def test_run_until(self, pair):
        sim, a, b = pair
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [1]

    def test_unconnected_nodes_raise(self):
        sim = EventSimulator()
        a, c = Recorder("a"), Recorder("c")
        sim.register_node(a)
        sim.register_node(c)
        with pytest.raises(KeyError):
            a.send(EnergyReport(sender="a", recipient="c"))

    def test_duplicate_node_rejected(self, pair):
        sim, a, b = pair
        with pytest.raises(ValueError):
            sim.register_node(Recorder("a"))

    def test_negative_delay_rejected(self, pair):
        sim, _, _ = pair
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_detached_node_cannot_send(self):
        node = Recorder("x")
        with pytest.raises(RuntimeError):
            node.send(EnergyReport(sender="x", recipient="y"))


class TestNetworkedRound:
    """End-to-end protocol round over the simulator, on a small slice
    of dataset #1 (reuses the session-trained runner)."""

    def test_assessment_round_produces_decision(self, runner1, dataset1):
        from repro.energy.model import ProcessingEnergyModel
        from repro.network.node import CameraSensorNode, ControllerNode

        records = dataset1.frames(1000, 1200, only_ground_truth=True)
        env = dataset1.environment
        model = ProcessingEnergyModel(width=env.width, height=env.height)

        sim = EventSimulator()
        controller_node = ControllerNode(
            "ctrl", runner1.controller, assessment_frames=2, budget=2.0
        )
        sim.register_node(controller_node)

        nodes = {}
        for camera_id in dataset1.camera_ids:
            item = runner1.library.get(f"T-{camera_id}")
            node = CameraSensorNode(
                node_id=camera_id,
                controller_id="ctrl",
                observations=[r.observation(camera_id) for r in records],
                detectors=runner1.detectors,
                thresholds={
                    n: p.threshold for n, p in item.profiles.items()
                },
                energy_model=model,
                rng=np.random.default_rng(1),
            )
            nodes[camera_id] = node
            sim.register_node(node)
            sim.connect(camera_id, "ctrl")
            node.start()
        sim.run()
        assert len(controller_node.energy_reports) == 4

        controller_node.start_assessment(
            {c: ["HOG", "ACF"] for c in dataset1.camera_ids}
        )
        sim.run()
        assert len(controller_node.decisions) == 1
        decision = controller_node.decisions[0]
        assert decision.assignment

        # Cameras received their assignments.
        for camera_id, node in nodes.items():
            expected = decision.assignment.get(camera_id)
            assert node.active_algorithm == expected

        # Active cameras process operational frames and drain battery.
        active = [
            nodes[c] for c in decision.assignment
        ]
        before = [n.battery.consumed for n in active]
        for node in active:
            assert node.process_next_frame()
        sim.run()
        for node, b in zip(active, before):
            assert node.battery.consumed > b

"""Property-based invariants of the deployment engine.

Whatever the policy/executor/budget combination, a run must satisfy
the structural invariants of the paper's evaluation protocol:
detection counts bounded by ground truth, energy split consistent,
and the real-time latency accounting
(:meth:`RunResult.max_latency_per_frame`) exactly the mean of the
accumulated per-camera processing time.  Hypothesis drives arbitrary
combinations through one shared trained engine; runs reseed from
their configuration, so example order cannot matter.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.policy import available_policies

#: Short windows keep each drawn run cheap (2-8 ground-truth frames).
WINDOW_ENDS = (1050, 1100, 1200)

policies = st.sampled_from(available_policies())
budgets = st.sampled_from((None, 0.5, 2.0))
workers = st.sampled_from((1, 2))
window_ends = st.sampled_from(WINDOW_ENDS)


def make_assignment(engine, draw_bits: int) -> dict[str, str]:
    """A deterministic camera->algorithm map from two drawn bits."""
    cameras = engine.dataset.camera_ids
    count = 2 + (draw_bits & 1)
    algorithm = "HOG" if draw_bits & 2 else "ACF"
    return {camera_id: algorithm for camera_id in cameras[:count]}


@given(
    policy=policies,
    budget=budgets,
    n_workers=workers,
    end=window_ends,
    draw_bits=st.integers(min_value=0, max_value=3),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_run_invariants(runner1, policy, budget, n_workers, end, draw_bits):
    engine = runner1.engine
    assignment = (
        make_assignment(engine, draw_bits) if policy == "fixed" else None
    )
    # The fixed policy ignores the budget; a None budget derives it
    # from the battery exactly as the paper does.
    result = engine.run(
        policy,
        budget=budget,
        assignment=assignment,
        start=1000,
        end=end,
        workers=n_workers,
    )

    # Detection counts are bounded by ground truth.
    assert 0 <= result.humans_detected <= result.humans_present
    assert 0.0 <= result.detection_rate <= 1.0

    # The frame window is fully evaluated: one record per annotated
    # frame in [start, end).
    expected_frames = len(
        engine.dataset.frames(1000, end, only_ground_truth=True)
    )
    assert result.frames_evaluated == expected_frames

    # Energy splits exactly into its two categories and is attributed
    # camera by camera.
    assert result.energy_joules >= 0.0
    assert result.energy_joules == sum(result.energy_by_camera.values())
    split = result.processing_joules + result.communication_joules
    assert abs(result.energy_joules - split) < 1e-9 * max(1.0, split)

    # Latency accounting: max_latency_per_frame is exactly the mean
    # accumulated processing time per evaluated frame, and with at
    # least one camera active it is strictly positive.
    assert result.max_latency_per_frame() == (
        result.processing_seconds / result.frames_evaluated
    )
    assert result.max_latency_per_frame() > 0.0

    # Probabilities are probabilities.
    assert 0.0 <= result.mean_fused_probability <= 1.0

    # Assessing policies record one decision per re-calibration round;
    # static policies record none.
    if policy in (
        "subset", "full", "cell", "cell_full", "peer", "predictive"
    ):
        assert result.decisions
    else:
        assert result.decisions == []


@given(policy=policies, end=st.sampled_from((1100, 1200)))
@settings(max_examples=6, deadline=None)
def test_serial_and_parallel_backends_agree(runner1, policy, end):
    """Executor choice is invisible in the result, field for field."""
    engine = runner1.engine
    assignment = (
        make_assignment(engine, 1) if policy == "fixed" else None
    )
    kwargs = dict(budget=2.0, assignment=assignment, start=1000, end=end)
    serial = engine.run(policy, workers=1, **kwargs)
    parallel = engine.run(policy, workers=2, **kwargs)
    assert vars(serial) == vars(parallel)

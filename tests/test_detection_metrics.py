"""Tests for detection metrics: matching, precision/recall, sweeps."""

import pytest

from repro.detection.base import BoundingBox, Detection
from repro.detection.metrics import (
    DetectionCounts,
    best_threshold,
    f_score,
    match_detections,
    precision_recall,
    sweep_thresholds,
)


def det(x, y, w, h, score):
    return Detection(
        bbox=BoundingBox(x, y, w, h),
        score=score,
        camera_id="c",
        frame_index=0,
        algorithm="HOG",
    )


class TestFScore:
    def test_balanced(self):
        assert f_score(0.5, 0.5) == pytest.approx(0.5)

    def test_harmonic_mean(self):
        assert f_score(1.0, 0.5) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f_score(0.0, 0.0) == 0.0

    def test_paper_example(self):
        # Table II LSVM: recall 0.89, precision 0.90 -> 0.89
        assert f_score(0.89, 0.90) == pytest.approx(0.895, abs=0.01)


class TestDetectionCounts:
    def test_precision_recall(self):
        c = DetectionCounts(tp=8, fp=2, fn=4)
        assert c.precision == pytest.approx(0.8)
        assert c.recall == pytest.approx(8 / 12)

    def test_empty_counts(self):
        c = DetectionCounts()
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.f_score == 0.0

    def test_add(self):
        total = DetectionCounts(1, 2, 3).add(DetectionCounts(4, 5, 6))
        assert (total.tp, total.fp, total.fn) == (5, 7, 9)


class TestMatchDetections:
    def test_perfect_match(self):
        gt = [BoundingBox(0, 0, 10, 20), BoundingBox(50, 0, 10, 20)]
        detections = [det(0, 0, 10, 20, 1.0), det(50, 0, 10, 20, 0.9)]
        counts = match_detections(detections, gt)
        assert (counts.tp, counts.fp, counts.fn) == (2, 0, 0)

    def test_false_positive(self):
        gt = [BoundingBox(0, 0, 10, 20)]
        detections = [det(0, 0, 10, 20, 1.0), det(100, 100, 10, 20, 0.9)]
        counts = match_detections(detections, gt)
        assert (counts.tp, counts.fp, counts.fn) == (1, 1, 0)

    def test_missed_object(self):
        gt = [BoundingBox(0, 0, 10, 20), BoundingBox(50, 0, 10, 20)]
        counts = match_detections([det(0, 0, 10, 20, 1.0)], gt)
        assert (counts.tp, counts.fp, counts.fn) == (1, 0, 1)

    def test_each_gt_matched_once(self):
        """Duplicate detections on one object: one TP, rest FP."""
        gt = [BoundingBox(0, 0, 10, 20)]
        detections = [det(0, 0, 10, 20, 1.0), det(1, 1, 10, 20, 0.9)]
        counts = match_detections(detections, gt)
        assert (counts.tp, counts.fp) == (1, 1)

    def test_highest_score_wins_ambiguity(self):
        gt = [BoundingBox(0, 0, 10, 20)]
        weak = det(2, 2, 10, 20, 0.1)
        strong = det(0, 0, 10, 20, 0.9)
        counts = match_detections([weak, strong], gt)
        assert counts.tp == 1

    def test_iou_threshold_respected(self):
        gt = [BoundingBox(0, 0, 10, 10)]
        barely = det(8, 8, 10, 10, 1.0)  # IoU ~ 0.02
        counts = match_detections([barely], gt, iou_threshold=0.4)
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 1)


class TestSweeps:
    def _frames(self):
        gt = [BoundingBox(0, 0, 10, 20), BoundingBox(50, 0, 10, 20)]
        detections = [
            det(0, 0, 10, 20, 0.9),     # TP, high score
            det(50, 0, 10, 20, 0.5),    # TP, mid score
            det(100, 0, 10, 20, 0.3),   # FP, low score
            det(200, 0, 10, 20, 0.2),   # FP, low score
        ]
        return [(detections, gt)]

    def test_precision_recall_at_thresholds(self):
        frames = self._frames()
        high = precision_recall(frames, 0.8)
        assert (high.tp, high.fp, high.fn) == (1, 0, 1)
        low = precision_recall(frames, 0.0)
        assert (low.tp, low.fp, low.fn) == (2, 2, 0)

    def test_sweep_returns_ascending_thresholds(self):
        sweep = sweep_thresholds(self._frames(), num_steps=10)
        thresholds = [t for t, _ in sweep]
        assert thresholds == sorted(thresholds)

    def test_best_threshold_filters_false_positives(self):
        threshold, counts = best_threshold(self._frames(), num_steps=30)
        # Optimal cut keeps both TPs and drops both FPs.
        assert 0.3 < threshold <= 0.5
        assert counts.f_score == pytest.approx(1.0)

    def test_best_threshold_empty_raises(self):
        with pytest.raises(ValueError):
            best_threshold([([], [])])

    def test_sweep_empty_detections(self):
        assert sweep_thresholds([([], [BoundingBox(0, 0, 1, 1)])]) == []

"""The reliable-transport state machine: timeout -> retransmit -> ack
dedup -> give-up, plus retransmission energy accounting."""

import numpy as np
import pytest

from repro.network.link import WirelessLink
from repro.network.messages import (
    UNSEQUENCED,
    Ack,
    EnergyReport,
    Heartbeat,
)
from repro.network.reliability import ReliableTransport, node_seed
from repro.network.simulator import EventSimulator, Node


class Endpoint(Node):
    """A node that acks/dedups through its transport and records."""

    def __init__(self, node_id, reliable=True, **transport_kwargs):
        super().__init__(node_id)
        self.transport = (
            ReliableTransport(self, **transport_kwargs) if reliable else None
        )
        self.processed = []
        self.transmit_energy = 0.0

    def on_transmit(self, num_bytes, energy_joules):
        self.transmit_energy += energy_joules

    def receive(self, message):
        if isinstance(message, Ack):
            self.transport.handle_ack(message)
            return
        if self.transport is not None and not self.transport.accept(message):
            return
        self.processed.append(message)


@pytest.fixture()
def net():
    sim = EventSimulator()
    a = Endpoint("a", jitter_s=0.0)
    b = Endpoint("b", jitter_s=0.0)
    sim.register_node(a)
    sim.register_node(b)
    sim.connect("a", "b", WirelessLink(bandwidth_bps=1e6, latency_s=0.01))
    return sim, a, b


def _report(sender="a", recipient="b", joules=5.0):
    return EnergyReport(
        sender=sender, recipient=recipient, residual_joules=joules
    )


class TestHappyPath:
    def test_delivery_and_ack_clears_pending(self, net):
        sim, a, b = net
        a.transport.send(_report())
        sim.run()
        assert [m.residual_joules for m in b.processed] == [5.0]
        assert a.transport.in_flight == 0
        assert a.transport.retransmissions == 0
        assert b.transport.acks_sent == 1

    def test_sequence_numbers_increment(self, net):
        sim, a, b = net
        assert a.transport.send(_report()) == 0
        assert a.transport.send(_report()) == 1
        sim.run()
        assert [m.seq for m in b.processed] == [0, 1]

    def test_unsequenced_messages_pass_without_ack(self, net):
        sim, a, b = net
        a.send(Heartbeat(sender="a", recipient="b"))
        sim.run()
        assert len(b.processed) == 1  # passes straight through...
        assert b.transport.acks_sent == 0  # ...without an ack

    def test_stale_ack_is_ignored(self, net):
        sim, a, b = net
        assert not a.transport.handle_ack(
            Ack(sender="b", recipient="a", acked_seq=99)
        )


class _LossySwitch:
    """Injector stand-in: drop the first N data transmissions."""

    def __init__(self, drops, kinds=("EnergyReport",)):
        self.remaining = drops
        self.kinds = kinds

    def on_send(self, message):
        from repro.faults.injector import SendVerdict

        if self.remaining > 0 and message.kind in self.kinds:
            self.remaining -= 1
            return SendVerdict(drop=True)
        return SendVerdict()


class TestRetryPath:
    def test_timeout_triggers_retransmit(self, net):
        sim, a, b = net
        sim.fault_injector = _LossySwitch(drops=1)
        a.transport.send(_report())
        sim.run()
        assert a.transport.retransmissions == 1
        assert [m.residual_joules for m in b.processed] == [5.0]
        assert a.transport.in_flight == 0

    def test_each_attempt_charges_sender_energy(self, net):
        sim, a, b = net
        a.transport.send(_report())
        sim.run()
        one_attempt = a.transmit_energy
        a.transmit_energy = 0.0
        sim.fault_injector = _LossySwitch(drops=2)
        a.transport.send(_report())
        sim.run()
        assert a.transmit_energy == pytest.approx(3 * one_attempt)

    def test_lost_ack_causes_duplicate_which_is_suppressed(self, net):
        sim, a, b = net
        sim.fault_injector = _LossySwitch(drops=1, kinds=("Ack",))
        a.transport.send(_report())
        sim.run()
        # The data arrived twice, was processed once, acked twice.
        assert len(b.processed) == 1
        assert b.transport.duplicates_dropped == 1
        assert b.transport.acks_sent == 2
        assert a.transport.in_flight == 0

    def test_backoff_grows_exponentially(self, net):
        sim, a, b = net
        sim.fault_injector = _LossySwitch(drops=3)
        a.transport.send(_report())
        sim.run()
        # timeouts at 0.25, +0.5, +1.0 before the 4th attempt lands.
        assert a.transport.retransmissions == 3
        assert sim.now >= 0.25 + 0.5 + 1.0

    def test_give_up_after_retry_cap(self):
        sim = EventSimulator()
        given_up = []
        a = Endpoint(
            "a",
            jitter_s=0.0,
            max_retries=2,
            on_give_up=given_up.append,
        )
        b = Endpoint("b", jitter_s=0.0)
        sim.register_node(a)
        sim.register_node(b)
        sim.connect("a", "b")
        sim.fault_injector = _LossySwitch(drops=10)
        a.transport.send(_report())
        sim.run()
        assert a.transport.gave_up == 1
        assert a.transport.retransmissions == 2  # the cap
        assert [m.kind for m in given_up] == ["EnergyReport"]
        assert a.transport.in_flight == 0
        assert b.processed == []


class TestDeterminism:
    def test_jitter_stream_is_seeded_per_node(self):
        t1 = np.random.default_rng(node_seed("cam-7")).uniform(0, 1, 4)
        t2 = np.random.default_rng(node_seed("cam-7")).uniform(0, 1, 4)
        t3 = np.random.default_rng(node_seed("cam-8")).uniform(0, 1, 4)
        assert np.array_equal(t1, t2)
        assert not np.array_equal(t1, t3)

    def test_unsequenced_constant(self):
        assert _report().seq == UNSEQUENCED

    def test_rejects_bad_parameters(self):
        node = Node("x")
        with pytest.raises(ValueError):
            ReliableTransport(node, timeout_s=0.0)
        with pytest.raises(ValueError):
            ReliableTransport(node, max_retries=-1)
        with pytest.raises(ValueError):
            ReliableTransport(node, backoff_factor=0.5)

"""Tests for the report generator and ASCII charts."""

import pytest

from repro.experiments.report import (
    ALL_SECTIONS,
    ascii_bar_chart,
    generate_report,
)


class TestAsciiBarChart:
    def test_renders_bars(self):
        chart = ascii_bar_chart(["a", "bb"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_input(self):
        assert ascii_bar_chart([], []) == "(no data)"

    def test_zero_values_safe(self):
        chart = ascii_bar_chart(["x"], [0.0])
        assert "x" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_unit_appended(self):
        chart = ascii_bar_chart(["a"], [3.0], unit=" J")
        assert "3 J" in chart


class TestGenerateReport:
    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            generate_report(sections=("figX",))

    def test_all_sections_known(self):
        assert set(ALL_SECTIONS) == {
            "table2", "table3", "table4", "table5",
            "fig3", "fig4", "fig5a", "fig5b", "fig6",
        }

    def test_tables_section_renders(self, runner1):
        report = generate_report(sections=("table2",))
        assert "Table II" in report
        assert "HOG" in report and "LSVM" in report

    def test_fig5a_section_renders(self, runner1):
        # Dataset #1's trained context is cached by the engine after
        # the first get_runner call, so this only trains once.
        report = generate_report(sections=("fig5a",))
        assert "Fig. 5a" in report
        assert "all_best" in report
        assert "#" in report  # the bar chart

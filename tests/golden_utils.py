"""Golden-fixture plumbing for the engine-equivalence regression.

The fixtures under ``tests/goldens/`` were captured from the
pre-refactor ``SimulationRunner.run`` / ``run_chaos`` implementations
(commit ``fecd7f2``) and pin every externally visible field of
:class:`~repro.core.runner.RunResult` and
:class:`~repro.experiments.faults.ChaosResult` bit-for-bit.  The
equivalence tests in ``test_golden_equivalence.py`` replay the same
configurations through the unified deployment engine and compare
field-by-field — floats included, since JSON round-trips Python
doubles exactly.

Regenerate (only when a deliberate behaviour change is made)::

    PYTHONPATH=src python tests/golden_utils.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The deployment window shared by every run golden: 12 ground-truth
#: frames of dataset #1's test segment (one full assessment round for
#: the EECS modes).
RUN_WINDOW = {"start": 1000, "end": 1300}


def golden_run_configs(camera_ids: list[str]) -> dict[str, dict]:
    """The four policy configurations the goldens pin."""
    c1, c2 = camera_ids[:2]
    return {
        "all_best": {"mode": "all_best", "budget": 2.0, **RUN_WINDOW},
        "subset": {"mode": "subset", "budget": 2.0, **RUN_WINDOW},
        "full": {"mode": "full", "budget": 2.0, **RUN_WINDOW},
        "fixed": {
            "mode": "fixed",
            "assignment": {c1: "HOG", c2: "ACF"},
            **RUN_WINDOW,
        },
    }


#: Chaos configurations: a zero-fault baseline plus loss + crash.
GOLDEN_CHAOS_CONFIGS = {
    "zero_fault": {"num_frames": 8},
    "faulty": {"loss_rate": 0.2, "crash_count": 1, "num_frames": 8},
}


def decision_fingerprint(decision) -> dict:
    return {
        "assignment": sorted(decision.assignment.items()),
        "num_active": decision.num_active,
        "ranked_camera_ids": list(decision.ranked_camera_ids),
        "baseline": [
            decision.baseline.num_objects,
            decision.baseline.mean_probability,
        ],
        "desired": [
            decision.desired.min_objects,
            decision.desired.min_probability,
        ],
        "achieved": [
            decision.achieved.num_objects,
            decision.achieved.mean_probability,
        ],
    }


def run_result_fingerprint(result) -> dict:
    """Every field of a RunResult, JSON-serialisable and exact."""
    return {
        "mode": result.mode,
        "humans_detected": result.humans_detected,
        "humans_present": result.humans_present,
        "energy_joules": result.energy_joules,
        "processing_joules": result.processing_joules,
        "communication_joules": result.communication_joules,
        "energy_by_camera": dict(sorted(result.energy_by_camera.items())),
        "mean_fused_probability": result.mean_fused_probability,
        "frames_evaluated": result.frames_evaluated,
        "processing_seconds": result.processing_seconds,
        "decisions": [decision_fingerprint(d) for d in result.decisions],
    }


def event_fingerprint(event) -> dict:
    return {
        "kind": event.kind,
        "subject": event.subject,
        "time_s": event.time_s,
    }


def chaos_result_fingerprint(result) -> dict:
    """Every field of a ChaosResult bar the spec it echoes back."""
    return {
        "humans_detected": result.humans_detected,
        "humans_present": result.humans_present,
        "delivered_messages": result.delivered_messages,
        "dropped_messages": result.dropped_messages,
        "retransmissions": result.retransmissions,
        "gave_up": result.gave_up,
        "duplicates_dropped": result.duplicates_dropped,
        "suppressed_sends": result.suppressed_sends,
        "battery_by_camera": dict(sorted(result.battery_by_camera.items())),
        "num_decisions": result.num_decisions,
        "final_assignment": dict(sorted(result.final_assignment.items())),
        "fault_events": [event_fingerprint(e) for e in result.fault_events],
        "recovery_events": [
            event_fingerprint(e) for e in result.recovery_events
        ],
        "simulated_s": result.simulated_s,
        "corrupted_received": result.corrupted_received,
        "breaker_blocked": result.breaker_blocked,
        "camera_modes": dict(sorted(result.camera_modes.items())),
    }


def make_golden_runner():
    """The exact runner construction the goldens were captured with
    (identical to the suite's session-scoped ``runner1`` fixture)."""
    import numpy as np

    from repro.core.runner import SimulationRunner
    from repro.datasets.synthetic import make_dataset

    return SimulationRunner(make_dataset(1), rng=np.random.default_rng(2017))


def collect_run_goldens(runner, workers: int = 1) -> dict:
    out = {}
    for name, config in golden_run_configs(runner.dataset.camera_ids).items():
        result = runner.run(workers=workers, **config)
        out[name] = run_result_fingerprint(result)
    return out


def collect_chaos_goldens(runner) -> dict:
    from repro.experiments.faults import ChaosSpec, run_chaos

    out = {}
    for name, kwargs in GOLDEN_CHAOS_CONFIGS.items():
        result = run_chaos(ChaosSpec(**kwargs), runner)
        out[name] = chaos_result_fingerprint(result)
    return out


def load_golden(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json") as fh:
        return json.load(fh)


def capture() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    runner = make_golden_runner()
    for name, data in (
        ("run_results", collect_run_goldens(runner)),
        ("chaos_results", collect_chaos_goldens(runner)),
    ):
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    capture()

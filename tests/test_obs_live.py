"""Live observability: sinks, alert rules, the HTTP exporter, and the
inertness guarantee (live streaming on ⇒ simulation output unchanged).
"""

import argparse
import json
import socket
import urllib.request

import pytest

from repro.engine.spec import DeploymentSpec
from repro.telemetry import (
    AlertEngine,
    AlertRule,
    AlertRuleError,
    JsonlStreamSink,
    MetricsExporter,
    MetricsRegistry,
    SubscriberSink,
    Telemetry,
    check_stream_contiguous,
    read_stream_records,
)
from repro.telemetry.exporter import METRICS_CONTENT_TYPE
from repro.telemetry.live import build_stream_record
from repro.telemetry.report import render_events_report
from repro.telemetry.schema import validate_stream_file

SPEC = DeploymentSpec(
    dataset_number=1,
    policy="full",
    budget=2.0,
    seed=2017,
    train_seed=2017,
    start=1000,
    end=1300,
)


def _record(seq, round_index):
    return build_stream_record(
        run_id="t",
        seq=seq,
        round_index=round_index,
        time_s=float(round_index),
        metrics={"schema": "repro.metrics.v1", "metrics": []},
        events=[],
        alerts=[],
    )


class TestSubscriberSink:
    def test_callback_and_ring_buffer(self):
        seen = []
        sink = SubscriberSink(callback=seen.append, keep_last=2)
        for i in range(5):
            sink.emit(_record(i, i))
        assert sink.emitted == 5
        assert len(seen) == 5
        assert [r["round"] for r in sink.records] == [3, 4]
        assert sink.last["round"] == 4


class TestJsonlStreamSink:
    def test_emit_and_read_back(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path)
        for i in range(3):
            sink.emit(_record(i, i))
        sink.close()
        records = read_stream_records(path)
        check_stream_contiguous(records)
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_rotation_preserves_order(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path, rotate_bytes=400)
        for i in range(8):
            sink.emit(_record(i, i))
        sink.close()
        assert (tmp_path / "s.jsonl.1").exists(), "no rotation happened"
        records = read_stream_records(path)
        check_stream_contiguous(records)
        assert len(records) == 8

    def test_torn_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path)
        for i in range(3):
            sink.emit(_record(i, i))
        sink.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"schema": "repro.stream.v1", "seq": 9, "rou')
        assert len(read_stream_records(path)) == 3

    def test_torn_line_mid_file_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"torn": \n{"seq": 0, "round": 0}\n')
        with pytest.raises(json.JSONDecodeError):
            read_stream_records(path)

    def test_fresh_run_truncates_stale_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path, rotate_bytes=400)
        for i in range(8):
            sink.emit(_record(i, i))
        sink.close()
        fresh = JsonlStreamSink(path)
        fresh.close()
        assert read_stream_records(path) == []
        assert not (tmp_path / "s.jsonl.1").exists()

    def test_resume_keeps_existing_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path)
        for i in range(4):
            sink.emit(_record(i, i))
        sink.close()
        resumed = JsonlStreamSink(path, resume=True)
        resumed.on_resume(2)
        assert [r["round"] for r in read_stream_records(path)] == [0, 1]
        for i in range(2, 4):
            resumed.emit(_record(i, i))
        resumed.close()
        check_stream_contiguous(read_stream_records(path))

    def test_on_resume_repairs_torn_line_and_rotation(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path, rotate_bytes=400)
        for i in range(8):
            sink.emit(_record(i, i))
        sink.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"half": ')
        resumed = JsonlStreamSink(path, resume=True)
        resumed.on_resume(6)
        records = read_stream_records(path)
        assert [r["round"] for r in records] == [0, 1, 2, 3, 4, 5]
        assert not (tmp_path / "s.jsonl.1").exists()

    def test_bad_rotate_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlStreamSink(tmp_path / "s.jsonl", rotate_bytes=0)


class TestAlertRules:
    def test_parse_simple(self):
        rule = AlertRule.parse("battery_joules < 50")
        assert rule.metric == "battery_joules"
        assert rule.op == "<"
        assert rule.threshold == 50.0
        assert rule.labels == ()

    def test_parse_with_labels(self):
        rule = AlertRule.parse(
            'fault_events_total{kind=breaker_open} > 3'
        )
        assert rule.labels == (("kind", "breaker_open"),)

    @pytest.mark.parametrize(
        "bad", ["", "metric", "metric == 5", "5 < metric", "m < "]
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AlertRuleError):
            AlertRule.parse(bad)

    def test_edge_triggered_fire_and_clear(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("battery", labels=("node",))
        engine = AlertEngine()
        engine.add("battery < 0.5")
        gauge.set(0.9, node="a")
        fired, cleared = engine.evaluate(registry)
        assert (fired, cleared) == ([], [])
        gauge.set(0.2, node="a")
        fired, cleared = engine.evaluate(registry)
        assert len(fired) == 1 and fired[0].series_labels == {"node": "a"}
        # still violating: no re-fire
        fired, cleared = engine.evaluate(registry)
        assert (fired, cleared) == ([], [])
        gauge.set(0.8, node="a")
        fired, cleared = engine.evaluate(registry)
        assert len(cleared) == 1 and not engine.active

    def test_label_selector_restricts_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("faults", labels=("kind",))
        counter.inc(5, kind="breaker_open")
        counter.inc(5, kind="heartbeat_miss")
        engine = AlertEngine()
        engine.add("faults{kind=breaker_open} > 3")
        fired, _ = engine.evaluate(registry)
        assert [s.series_labels for s in fired] == [
            {"kind": "breaker_open"}
        ]

    def test_histogram_rule_rejected_at_evaluation(self):
        registry = MetricsRegistry()
        registry.histogram("latency").observe(0.1)
        engine = AlertEngine()
        engine.add("latency > 1")
        with pytest.raises(AlertRuleError):
            engine.evaluate(registry)

    def test_snapshot_restore_suppresses_refire(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(9.0)
        engine = AlertEngine()
        engine.add("g > 5")
        fired, _ = engine.evaluate(registry)
        assert fired
        fresh = AlertEngine()
        fresh.add("g > 5")
        fresh.restore(engine.snapshot())
        fired, _ = fresh.evaluate(registry)
        assert fired == [] and len(fresh.active) == 1


class TestFlushRound:
    def test_inactive_without_sinks_or_rules(self):
        telemetry = Telemetry(run_id="t")
        assert not telemetry.live_enabled
        assert telemetry.flush_round(0, 2.0) is None
        # status still refreshed for /status
        assert telemetry.status_snapshot()["rounds_completed"] == 1

    def test_events_partitioned_between_flushes(self):
        telemetry = Telemetry(run_id="t")
        sink = telemetry.attach_sink(SubscriberSink())
        telemetry.event("first", time_s=1.0)
        telemetry.flush_round(0, 1.0)
        telemetry.event("second", time_s=2.0)
        telemetry.flush_round(1, 2.0)
        kinds = [
            [e["kind"] for e in r["events"]] for r in sink.records
        ]
        assert kinds == [["first"], ["second"]]

    def test_alert_transitions_become_events(self):
        telemetry = Telemetry(run_id="t")
        sink = telemetry.attach_sink(SubscriberSink())
        telemetry.add_alert_rule("run_rounds_total > 1")
        rounds = telemetry.registry.counter("run_rounds_total")
        rounds.inc()
        telemetry.flush_round(0, 1.0)
        rounds.inc()
        telemetry.flush_round(1, 2.0)
        assert [e.kind for e in telemetry.events.events] == ["alert"]
        assert sink.records[1]["alerts"][0]["value"] == 2.0


class TestExporter:
    @pytest.fixture()
    def served(self):
        telemetry = Telemetry(run_id="exp")
        telemetry.registry.counter(
            "energy_joules_total", "Energy.", labels=("node",)
        ).inc(3.5, node="c0")
        exporter = MetricsExporter(telemetry, port=0)
        exporter.start()
        yield telemetry, exporter
        exporter.close()

    def _get(self, exporter, path):
        with urllib.request.urlopen(
            f"http://{exporter.host}:{exporter.port}{path}"
        ) as response:
            return response.status, response.headers, response.read()

    def test_metrics_page(self, served):
        _, exporter = served
        status, headers, body = self._get(exporter, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE energy_joules_total counter" in text
        assert 'energy_joules_total{node="c0"} 3.5' in text

    def test_status_page(self, served):
        telemetry, exporter = served
        telemetry.flush_round(4, 10.0)
        _, _, body = self._get(exporter, "/status")
        page = json.loads(body)
        assert page["schema"] == "repro.status.v1"
        assert page["rounds_completed"] == 5
        assert page["run_id"] == "exp"

    def test_unknown_path_404(self, served):
        _, exporter = served
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(exporter, "/nope")
        assert err.value.code == 404

    def test_close_is_idempotent(self):
        exporter = MetricsExporter(Telemetry(run_id="t"), port=0)
        exporter.start()
        exporter.close()
        exporter.close()  # CLI teardown + error path both close

    def test_close_without_start_is_idempotent(self):
        exporter = MetricsExporter(Telemetry(run_id="t"), port=0)
        exporter.close()
        exporter.close()


def _live_args(**overrides):
    """The argparse surface _attach_live consumes, defaults off."""
    values = {
        "stream_out": None,
        "stream_rotate_bytes": None,
        "alert_rule": [],
        "metrics_port": None,
        "resume": False,
    }
    values.update(overrides)
    return argparse.Namespace(**values)


class TestAttachLiveErrorPaths:
    """CLI usage errors must exit cleanly and leak no resources."""

    def test_bad_alert_rule_is_a_usage_error(self, tmp_path):
        from repro.cli import _attach_live

        telemetry = Telemetry(run_id="t")
        with pytest.raises(SystemExit, match="^error: "):
            _attach_live(
                telemetry, _live_args(alert_rule=["metric == 5"])
            )

    def test_bad_alert_rule_closes_attached_stream_sink(self, tmp_path):
        from repro.cli import _attach_live

        telemetry = Telemetry(run_id="t")
        with pytest.raises(SystemExit, match="^error: "):
            _attach_live(
                telemetry,
                _live_args(
                    stream_out=str(tmp_path / "s.jsonl"),
                    alert_rule=["not a rule"],
                ),
            )
        (sink,) = telemetry._sinks
        assert sink.closed

    def test_taken_metrics_port_is_a_usage_error(self, tmp_path):
        from repro.cli import _attach_live

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            telemetry = Telemetry(run_id="t")
            with pytest.raises(SystemExit, match="^error: ") as err:
                _attach_live(
                    telemetry,
                    _live_args(
                        stream_out=str(tmp_path / "s.jsonl"),
                        metrics_port=port,
                    ),
                )
            assert str(port) in str(err.value)
            (sink,) = telemetry._sinks
            assert sink.closed
        finally:
            blocker.close()


class TestJsonlStreamSinkLifecycle:
    def test_descriptor_is_eager_and_close_is_observable(self, tmp_path):
        sink = JsonlStreamSink(tmp_path / "s.jsonl")
        assert not sink.closed
        assert (tmp_path / "s.jsonl").exists()
        sink.close()
        assert sink.closed

    def test_unwritable_path_fails_at_attach_time(self, tmp_path):
        target = tmp_path / "dir.jsonl"
        target.mkdir()
        with pytest.raises(OSError):
            JsonlStreamSink(target)


class TestLiveStreamingIsInert:
    """Sinks + alert rules attached ⇒ simulation output unchanged."""

    def test_run_results_bit_identical(self, tmp_path):
        plain_engine = SPEC.build_engine()
        plain = SPEC.execute(engine=plain_engine)
        plain_engine.close()

        telemetry = Telemetry(run_id="live")
        telemetry.attach_sink(JsonlStreamSink(tmp_path / "s.jsonl"))
        telemetry.attach_sink(SubscriberSink())
        telemetry.add_alert_rule("run_rounds_total > 1")
        live_engine = SPEC.build_engine(telemetry=telemetry)
        live = SPEC.execute(engine=live_engine)
        live_engine.close()
        telemetry.close_sinks()

        assert vars(plain) == vars(live)
        records = read_stream_records(tmp_path / "s.jsonl")
        check_stream_contiguous(records)
        assert validate_stream_file(tmp_path / "s.jsonl") == len(records)
        # the final cumulative snapshot covers the whole run
        final = records[-1]["metrics"]
        totals = {
            m["name"]: sum(s["value"] for s in m["series"])
            for m in final["metrics"]
            if m["type"] != "histogram"
        }
        assert totals["run_rounds_total"] == len(records)
        assert totals["energy_joules_total"] > 0.0


class TestEventReportTruncation:
    def _events(self, count):
        return [
            {
                "schema": "repro.event.v1",
                "run_id": "t",
                "time_s": float(i),
                "kind": "tick",
                "node_id": "n",
                "detail": {},
            }
            for i in range(count)
        ]

    def test_truncation_is_announced(self):
        report = render_events_report(self._events(7), limit=5)
        assert "(first 5)" in report
        assert "(+2 more events)" in report

    def test_no_banner_when_everything_fits(self):
        report = render_events_report(self._events(5), limit=5)
        assert "more events" not in report
        assert "(first" not in report

"""Tests for cross-camera re-identification and fusion."""

import numpy as np
import pytest

from repro.detection.base import BoundingBox, Detection
from repro.geometry.homography import Homography
from repro.reid.fusion import ObjectGroup, fuse_probabilities
from repro.reid.mahalanobis import MahalanobisMetric
from repro.reid.matcher import CrossCameraMatcher


class TestFuseProbabilities:
    def test_single_camera_unchanged(self):
        assert fuse_probabilities([0.7]) == pytest.approx(0.7)

    def test_two_cameras_eq6(self):
        """Eq. 6: 1 - (1-p1)(1-p2)."""
        assert fuse_probabilities([0.6, 0.5]) == pytest.approx(0.8)

    def test_monotone_in_members(self):
        assert fuse_probabilities([0.5, 0.5]) > fuse_probabilities([0.5])

    def test_certain_camera_dominates(self):
        assert fuse_probabilities([1.0, 0.1]) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert fuse_probabilities([]) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fuse_probabilities([1.5])

    def test_commutative(self):
        assert fuse_probabilities([0.3, 0.8, 0.1]) == pytest.approx(
            fuse_probabilities([0.8, 0.1, 0.3])
        )


class TestObjectGroup:
    def _det(self, camera, prob, truth_id=None):
        return Detection(
            bbox=BoundingBox(0, 0, 10, 20),
            score=0.5,
            camera_id=camera,
            frame_index=0,
            algorithm="HOG",
            probability=prob,
            truth_id=truth_id,
        )

    def test_fused_probability(self):
        group = ObjectGroup(
            detections=[self._det("c1", 0.6), self._det("c2", 0.5)]
        )
        assert group.fused_probability == pytest.approx(0.8)

    def test_nan_probability_falls_back_to_score(self):
        group = ObjectGroup(detections=[self._det("c1", float("nan"))])
        assert group.fused_probability == pytest.approx(0.5)

    def test_majority_truth_id(self):
        group = ObjectGroup(detections=[
            self._det("c1", 0.5, truth_id=3),
            self._det("c2", 0.5, truth_id=3),
            self._det("c3", 0.5, truth_id=7),
        ])
        assert group.majority_truth_id == 3
        assert group.is_true_object

    def test_false_positive_group(self):
        group = ObjectGroup(detections=[self._det("c1", 0.5)])
        assert not group.is_true_object
        assert group.majority_truth_id is None


class TestMahalanobis:
    def test_identity_on_whitened_data(self, rng):
        data = rng.normal(size=(500, 4))
        metric = MahalanobisMetric(shrinkage=0.0).fit(data)
        a, b = np.zeros(4), np.ones(4)
        # Whitened data: Mahalanobis ~ Euclidean.
        assert metric.distance(a, b) == pytest.approx(2.0, rel=0.2)

    def test_scales_by_variance(self, rng):
        data = rng.normal(size=(500, 2)) * np.array([10.0, 0.1])
        metric = MahalanobisMetric(shrinkage=0.0).fit(data)
        along_wide = metric.distance([0, 0], [1, 0])
        along_narrow = metric.distance([0, 0], [0, 1])
        assert along_narrow > along_wide

    def test_distance_zero_to_self(self, rng):
        metric = MahalanobisMetric().fit(rng.normal(size=(50, 3)))
        assert metric.distance([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        metric = MahalanobisMetric().fit(rng.normal(size=(50, 3)))
        a, b = rng.normal(size=3), rng.normal(size=3)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    def test_pairwise_matches_distance(self, rng):
        metric = MahalanobisMetric().fit(rng.normal(size=(60, 4)))
        pts = rng.normal(size=(5, 4))
        pairwise = metric.pairwise(pts)
        assert pairwise[1, 3] == pytest.approx(
            metric.distance(pts[1], pts[3])
        )
        np.testing.assert_allclose(pairwise, pairwise.T)

    def test_pca_reduction(self, rng):
        data = rng.normal(size=(100, 10))
        metric = MahalanobisMetric(n_components=3).fit(data)
        assert metric.distance(data[0], data[1]) >= 0.0

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MahalanobisMetric().distance([0], [1])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            MahalanobisMetric().fit(np.zeros((1, 3)))

    def test_rejects_bad_shrinkage(self):
        with pytest.raises(ValueError):
            MahalanobisMetric(shrinkage=2.0)


def identity_matcher(num_cameras=3, use_color=False, metric=None):
    homographies = {
        f"c{i}": Homography.identity() for i in range(1, num_cameras + 1)
    }
    return CrossCameraMatcher(
        homographies,
        ground_radius=5.0,
        color_metric=metric,
        use_color=use_color,
    )


def detection(camera, x, y, score=0.9, truth_id=None, color=None):
    return Detection(
        bbox=BoundingBox(x - 5, y - 20, 10, 20),
        score=score,
        camera_id=camera,
        frame_index=0,
        algorithm="HOG",
        color_feature=color if color is not None else np.full(40, 0.5),
        truth_id=truth_id,
    )


class TestCrossCameraMatcher:
    def test_groups_nearby_detections(self):
        matcher = identity_matcher()
        groups = matcher.group([
            detection("c1", 100, 100, truth_id=1),
            detection("c2", 102, 101, truth_id=1),
        ])
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_separates_distant_detections(self):
        matcher = identity_matcher()
        groups = matcher.group([
            detection("c1", 100, 100),
            detection("c2", 300, 300),
        ])
        assert len(groups) == 2

    def test_same_camera_never_grouped(self):
        matcher = identity_matcher()
        groups = matcher.group([
            detection("c1", 100, 100),
            detection("c1", 101, 101),
        ])
        assert len(groups) == 2

    def test_color_gate_rejects_mismatch(self, rng):
        samples = rng.uniform(size=(200, 40))
        metric = MahalanobisMetric(shrinkage=0.3).fit(samples)
        matcher = identity_matcher(use_color=True, metric=metric)
        dark = np.full(40, 0.1)
        light = np.full(40, 0.9)
        groups = matcher.group([
            detection("c1", 100, 100, color=dark),
            detection("c2", 101, 100, color=light),
        ])
        assert len(groups) == 2

    def test_color_gate_accepts_match(self, rng):
        samples = rng.uniform(size=(200, 40))
        metric = MahalanobisMetric(shrinkage=0.3).fit(samples)
        matcher = identity_matcher(use_color=True, metric=metric)
        shade = np.full(40, 0.4)
        groups = matcher.group([
            detection("c1", 100, 100, color=shade),
            detection("c2", 101, 100, color=shade + 0.01),
        ])
        assert len(groups) == 1

    def test_unknown_camera_raises(self):
        matcher = identity_matcher()
        with pytest.raises(KeyError):
            matcher.group([detection("c9", 0, 0)])

    def test_reid_precision_pure_groups(self):
        matcher = identity_matcher()
        groups = matcher.group([
            detection("c1", 100, 100, truth_id=1),
            detection("c2", 101, 100, truth_id=1),
        ])
        assert matcher.reid_precision(groups) == 1.0

    def test_empty_input(self):
        assert identity_matcher().group([]) == []

    def test_rejects_no_homographies(self):
        with pytest.raises(ValueError):
            CrossCameraMatcher({})


class TestEndToEndReid:
    """Re-identification on the real synthetic dataset (paper: >90%
    precision)."""

    def test_dataset_reid_precision(self, dataset1, rng):
        from repro.detection.detectors import make_detector

        detector = make_detector("LSVM", dataset1.environment)
        matcher = CrossCameraMatcher(
            dataset1.ground_homographies(), ground_radius=0.9
        )
        records = dataset1.frames(0, 250, only_ground_truth=True)
        precisions = []
        for record in records:
            detections = []
            for camera_id in dataset1.camera_ids:
                obs = record.observation(camera_id)
                detections.extend(
                    detector.detect(obs, rng, threshold=-1.2)
                )
            groups = matcher.group(detections)
            precisions.append(matcher.reid_precision(groups))
        # Homography-only matching already sits near the paper's >90%
        # bound; the colour-verification ablation benchmark shows the
        # full matcher exceeding it.
        assert np.mean(precisions) >= 0.88

"""Slow-path CLI tests: the deployment and report commands."""

import pytest

from repro.cli import main


class TestCliDeployment:
    def test_run_command_end_to_end(self, capsys):
        """`python -m repro run` trains offline and deploys."""
        code = main([
            "run", "--dataset", "1", "--mode", "full",
            "--budget", "2.0", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "humans detected" in out
        assert "energy" in out
        assert "cameras/round" in out

    def test_fig3_command(self, capsys, runner1, dataset2):
        code = main(["fig3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive" in out

"""Slow-path CLI tests: the deployment and report commands."""

import pytest

from repro.cli import main


class TestCliDeployment:
    def test_run_command_end_to_end(self, capsys):
        """`python -m repro run` trains offline and deploys."""
        code = main([
            "run", "--dataset", "1", "--mode", "full",
            "--budget", "2.0", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "humans detected" in out
        assert "energy" in out
        assert "cameras/round" in out

    def test_fig3_command(self, capsys, runner1, dataset2):
        code = main(["fig3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive" in out


class TestCliCheckpoint:
    BASE = [
        "run", "--dataset", "1", "--mode", "full", "--seed", "7",
        "--start", "1000", "--end", "1300",
        "--recalibration-interval", "100",
    ]

    def test_run_checkpoint_crash_and_resume(self, capsys, tmp_path):
        """Kill at a round boundary (exit 3), resume bit-identically."""
        reference = tmp_path / "reference.json"
        resumed = tmp_path / "resumed.json"
        ckpt = tmp_path / "ckpt"

        code = main(self.BASE + ["--result-out", str(reference)])
        assert code == 0

        code = main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--crash-after", "0",
        ])
        assert code == 3
        assert "interrupted" in capsys.readouterr().out
        assert list(ckpt.glob("*.json")), "no checkpoint written"

        code = main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--resume",
            "--result-out", str(resumed),
        ])
        assert code == 0
        assert reference.read_bytes() == resumed.read_bytes()

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--resume"])

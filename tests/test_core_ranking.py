"""Tests for algorithm rank ordering and budget filtering."""

import pytest

from repro.core.calibration import TrainingItem
from repro.core.ranking import (
    affordable_profiles,
    best_affordable,
    efficiency_candidates,
    rank_algorithms,
)
from tests.test_core_calibration import make_profile


@pytest.fixture()
def item():
    """A training item mirroring dataset #1's Table II shape."""
    return TrainingItem(
        name="T1",
        profiles={
            "HOG": make_profile("HOG", f=0.66, energy=1.08),
            "ACF": make_profile("ACF", f=0.505, energy=0.07),
            "C4": make_profile("C4", f=0.63, energy=4.92),
            "LSVM": make_profile("LSVM", f=0.89, energy=3.31),
        },
    )


class TestRankAlgorithms:
    def test_ordering(self, item):
        ranked = rank_algorithms(item)
        assert [p.algorithm for p in ranked] == ["LSVM", "HOG", "C4", "ACF"]


class TestAffordable:
    def test_high_budget_includes_all(self, item):
        assert len(affordable_profiles(item, budget=10.0)) == 4

    def test_low_budget_filters(self, item):
        names = {p.algorithm for p in affordable_profiles(item, budget=2.0)}
        assert names == {"HOG", "ACF"}

    def test_communication_cost_counts(self, item):
        names = {
            p.algorithm
            for p in affordable_profiles(
                item, budget=1.1, communication_cost=0.01
            )
        }
        assert names == {"HOG", "ACF"}
        names = {
            p.algorithm
            for p in affordable_profiles(
                item, budget=1.1, communication_cost=0.5
            )
        }
        assert names == {"ACF"}


class TestBestAffordable:
    def test_picks_most_accurate_within_budget(self, item):
        # Budget 2: LSVM (best overall) unaffordable -> HOG.
        assert best_affordable(item, budget=2.0).algorithm == "HOG"

    def test_high_budget_picks_lsvm(self, item):
        assert best_affordable(item, budget=10.0).algorithm == "LSVM"

    def test_tiny_budget_none(self, item):
        assert best_affordable(item, budget=0.01) is None


class TestEfficiencyCandidates:
    def test_acf_is_candidate_against_hog(self, item):
        """ACF: 0.505/0.07 = 7.2 f/J >> HOG's 0.61 f/J."""
        current = item.profile("HOG")
        candidates = efficiency_candidates(item, current, budget=2.0)
        assert [c.algorithm for c in candidates] == ["ACF"]

    def test_expensive_accurate_not_candidate(self, item):
        """LSVM is more accurate but less efficient than ACF."""
        current = item.profile("ACF")
        assert efficiency_candidates(item, current, budget=10.0) == []

    def test_candidates_must_fit_budget(self, item):
        current = item.profile("HOG")
        candidates = efficiency_candidates(item, current, budget=0.05)
        assert candidates == []

    def test_candidates_must_save_energy(self, item):
        """A more efficient but MORE expensive algorithm is excluded."""
        current = item.profile("ACF")
        candidates = efficiency_candidates(item, current, budget=10.0)
        for c in candidates:
            assert c.energy_per_frame < current.energy_per_frame

    def test_sorted_cheapest_first(self):
        item = TrainingItem(
            name="T",
            profiles={
                "A": make_profile("A", f=0.9, energy=4.0),
                "B": make_profile("B", f=0.6, energy=1.0),
                "C": make_profile("C", f=0.5, energy=0.5),
            },
        )
        candidates = efficiency_candidates(
            item, item.profile("A"), budget=10.0
        )
        energies = [c.energy_per_frame for c in candidates]
        assert energies == sorted(energies)

"""Tests for PCA and subspace bases."""

import numpy as np
import pytest

from repro.domain_adaptation.pca import PCA, pca_basis, uncentered_basis


class TestPCA:
    def test_components_orthonormal(self, rng):
        data = rng.normal(size=(50, 10))
        pca = PCA(4).fit(data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_first_component_is_max_variance(self, rng):
        # Data stretched along a known direction.
        direction = np.array([3.0, 4.0]) / 5.0
        data = rng.normal(size=(200, 1)) * 5.0 @ direction[None, :]
        data += rng.normal(scale=0.1, size=data.shape)
        pca = PCA(1).fit(data)
        cos = abs(pca.components_[0] @ direction)
        assert cos > 0.99

    def test_explained_variance_descending(self, rng):
        data = rng.normal(size=(60, 8)) * np.arange(1, 9)
        pca = PCA(5).fit(data)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_transform_centers_data(self, rng):
        data = rng.normal(loc=5.0, size=(40, 6))
        pca = PCA(3).fit(data)
        projected = pca.transform(data)
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-9)

    def test_rank_limits_components(self, rng):
        data = rng.normal(size=(5, 20))
        pca = PCA(10).fit(data)
        assert pca.components_.shape[0] == 4  # n - 1

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            PCA(2).fit(np.zeros((1, 5)))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 5)))

    def test_fit_transform_equals_fit_then_transform(self, rng):
        data = rng.normal(size=(30, 7))
        a = PCA(3).fit_transform(data)
        pca = PCA(3).fit(data)
        np.testing.assert_allclose(a, pca.transform(data))


class TestBases:
    def test_pca_basis_shape(self, rng):
        data = rng.normal(size=(40, 12))
        basis = pca_basis(data, 5)
        assert basis.shape == (12, 5)

    def test_uncentered_basis_orthonormal(self, rng):
        data = rng.normal(size=(30, 15))
        basis = uncentered_basis(data, 6)
        np.testing.assert_allclose(
            basis.T @ basis, np.eye(6), atol=1e-10
        )

    def test_uncentered_basis_keeps_mean_direction(self, rng):
        mean = np.zeros(10)
        mean[0] = 100.0
        data = mean + rng.normal(scale=0.1, size=(20, 10))
        basis = uncentered_basis(data, 3)
        # The dominant direction must align with the mean.
        cos = abs(basis[:, 0] @ (mean / np.linalg.norm(mean)))
        assert cos > 0.999

    def test_uncentered_rejects_empty(self):
        with pytest.raises(ValueError):
            uncentered_basis(np.zeros((0, 5)), 2)

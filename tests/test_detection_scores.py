"""Tests for score-to-probability calibration."""

import numpy as np
import pytest

from repro.detection.scores import ScoreCalibrator


class TestScoreCalibrator:
    def _separable_data(self, rng, n=300):
        tp = rng.normal(loc=2.0, scale=0.5, size=n)
        fp = rng.normal(loc=-1.0, scale=0.5, size=n)
        scores = np.concatenate([tp, fp])
        labels = np.concatenate([np.ones(n), np.zeros(n)])
        return scores, labels

    def test_monotone_increasing(self, rng):
        cal = ScoreCalibrator().fit(*self._separable_data(rng))
        probs = cal.predict_proba(np.linspace(-3, 4, 50))
        assert np.all(np.diff(probs) >= -1e-12)

    def test_separates_classes(self, rng):
        cal = ScoreCalibrator().fit(*self._separable_data(rng))
        assert cal(3.0) > 0.9
        assert cal(-2.0) < 0.1

    def test_probabilities_in_unit_interval(self, rng):
        cal = ScoreCalibrator().fit(*self._separable_data(rng))
        probs = cal.predict_proba(rng.normal(size=100) * 10)
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)

    def test_overlapping_data_midpoint_near_half(self, rng):
        tp = rng.normal(loc=0.5, size=500)
        fp = rng.normal(loc=-0.5, size=500)
        scores = np.concatenate([tp, fp])
        labels = np.concatenate([np.ones(500), np.zeros(500)])
        cal = ScoreCalibrator().fit(scores, labels)
        assert cal(0.0) == pytest.approx(0.5, abs=0.1)

    def test_single_class_positive(self):
        cal = ScoreCalibrator().fit(np.array([1.0, 2.0]), np.array([1, 1]))
        assert cal(0.0) > 0.9

    def test_single_class_negative(self):
        cal = ScoreCalibrator().fit(np.array([1.0, 2.0]), np.array([0, 0]))
        assert cal(0.0) < 0.1

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ScoreCalibrator().fit(np.zeros(3), np.zeros(4))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            ScoreCalibrator().fit(np.zeros(3), np.array([0, 1, 2]))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            ScoreCalibrator().fit(np.array([1.0]), np.array([1]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ScoreCalibrator().predict_proba(np.zeros(2))

    def test_calibration_quality(self, rng):
        """Predicted probabilities track empirical frequencies."""
        scores, labels = self._separable_data(rng, n=2000)
        cal = ScoreCalibrator().fit(scores, labels)
        probs = cal.predict_proba(scores)
        mid = (probs > 0.4) & (probs < 0.6)
        if mid.sum() > 20:
            assert labels[mid].mean() == pytest.approx(0.5, abs=0.2)

"""Tests for latency accounting and the night-environment extension."""

import pytest

from repro.datasets.synthetic import DATASET_SPECS, make_dataset
from repro.detection.profiles import get_profile
from repro.world.environment import NIGHT


class TestLatencyAccounting:
    def test_processing_seconds_accumulate(self, runner1):
        result = runner1.run(
            mode="fixed",
            assignment={runner1.dataset.camera_ids[0]: "HOG"},
            start=1000,
            end=1500,
        )
        # 20 GT frames x 1.5 s/frame (HOG at 360x288).
        assert result.processing_seconds == pytest.approx(
            result.frames_evaluated * 1.5, rel=0.05
        )

    def test_latency_scales_with_algorithm(self, runner1):
        cam = runner1.dataset.camera_ids[0]
        hog = runner1.run(
            mode="fixed", assignment={cam: "HOG"}, start=1000, end=1500
        )
        acf = runner1.run(
            mode="fixed", assignment={cam: "ACF"}, start=1000, end=1500
        )
        assert acf.processing_seconds < hog.processing_seconds

    def test_lsvm_misses_realtime_cadence(self, runner1):
        """LSVM at 6.4 s/frame cannot sustain the paper's one frame
        per 2 s cadence — the stated reason it is excluded."""
        cam = runner1.dataset.camera_ids[0]
        result = runner1.run(
            mode="fixed", assignment={cam: "LSVM"}, start=1000, end=1500
        )
        assert result.max_latency_per_frame() > (
            runner1.config.seconds_per_frame
        )

    def test_hog_meets_realtime_cadence(self, runner1):
        cam = runner1.dataset.camera_ids[0]
        result = runner1.run(
            mode="fixed", assignment={cam: "HOG"}, start=1000, end=1500
        )
        assert result.max_latency_per_frame() <= (
            runner1.config.seconds_per_frame
        )

    def test_empty_run_zero_latency(self, runner1):
        result = runner1.run(
            mode="fixed",
            assignment={runner1.dataset.camera_ids[0]: "ACF"},
            start=1001,
            end=1002,  # no ground-truth frames in this span
        )
        assert result.processing_seconds == 0.0
        assert result.max_latency_per_frame() == 0.0


class TestNightEnvironment:
    def test_dataset4_registered(self):
        assert 4 in DATASET_SPECS
        assert DATASET_SPECS[4].environment is NIGHT

    def test_night_profiles_exist(self):
        for algorithm in ("HOG", "ACF", "C4", "LSVM"):
            profile = get_profile(algorithm, "night")
            assert profile.family == "night"

    def test_lsvm_wins_at_night(self):
        f_scores = {
            a: get_profile(a, "night").f_score
            for a in ("HOG", "ACF", "C4", "LSVM")
        }
        assert max(f_scores, key=f_scores.get) == "LSVM"

    def test_night_darker_than_terrace(self):
        from repro.world.environment import TERRACE

        assert NIGHT.brightness < TERRACE.brightness
        assert NIGHT.contrast < TERRACE.contrast

    def test_night_dataset_generates(self):
        dataset = make_dataset(4)
        records = dataset.frames(0, 50, only_ground_truth=True)
        assert len(records) == 2
        obs = records[0].observation(dataset.camera_ids[0])
        # Dark scene: the rendered canvas is dim on average.
        assert obs.image.mean() < 0.45

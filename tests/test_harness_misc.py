"""Tests for the experiment harness and assorted edge behaviour."""

import pytest

from repro.core.config import EECSConfig
from repro.experiments.harness import RunSpec, get_runner


class TestHarness:
    def test_context_shared_engines_fresh(self):
        """Training artefacts are cached; per-run mutable state is not."""
        a = get_runner(1)
        b = get_runner(1)
        # Fresh facade and engine per call: no leaked controller or
        # battery state between experiments...
        assert a is not b
        assert a.controller is not b.controller
        # ...over the same immutable trained context.
        assert a.engine.context is b.engine.context
        assert a.library is b.library
        assert a.matcher is b.matcher

    def test_custom_config_gets_own_context(self):
        custom = get_runner(1, config=EECSConfig(gamma_n=0.7))
        default = get_runner(1)
        assert custom.config.gamma_n == 0.7
        assert custom.engine.context is not default.engine.context
        # Repeated custom-config calls share a context too (the old
        # runner cache rebuilt — retrained — on every such call).
        again = get_runner(1, config=EECSConfig(gamma_n=0.7))
        assert again.engine.context is custom.engine.context

    def test_reset_runners_is_gone(self):
        """The deprecated facade shim was removed outright."""
        import repro.experiments as experiments
        import repro.experiments.harness as harness

        assert not hasattr(harness, "reset_runners")
        assert "reset_runners" not in experiments.__all__

    def test_run_spec_validates_policy_name(self):
        with pytest.raises(ValueError, match="valid policies are"):
            RunSpec(dataset_number=1, mode="bestest")

    def test_run_spec_validates_fixed_assignment(self):
        with pytest.raises(ValueError, match="assignment"):
            RunSpec(dataset_number=1, mode="fixed")


class TestCameraFailureHandling:
    def test_dead_camera_excluded_from_selection(self, runner1):
        """A camera whose budget collapses (battery dead) is excluded
        while the rest of the network keeps operating."""
        from repro.core.selection import AssessmentData
        from repro.energy.meter import EnergyMeter

        dataset = runner1.dataset
        records = dataset.frames(1000, 1200, only_ground_truth=True)[:3]
        meter = EnergyMeter()
        assessment = runner1._collect_assessment(records, 2.0, meter)

        dead = dataset.camera_ids[0]
        overrides = {
            camera_id: (0.001 if camera_id == dead else 2.0)
            for camera_id in dataset.camera_ids
        }
        decision = runner1.controller.select(
            assessment, budget_overrides=overrides
        )
        assert dead not in decision.assignment
        assert decision.assignment  # survivors still selected

    def test_all_dead_raises(self, runner1):
        from repro.core.selection import AssessmentData

        with pytest.raises(RuntimeError):
            runner1.controller.select(
                AssessmentData(frames=[{}]),
                budget_overrides={
                    c: 0.001 for c in runner1.dataset.camera_ids
                },
            )


class TestAdaptiveSelectAlgorithm:
    def test_exclusion_respected(self):
        from repro.core.adaptive import AdaptiveDeployment
        from repro.core.calibration import TrainingItem
        from tests.test_core_calibration import make_profile

        item = TrainingItem(
            name="T",
            profiles={
                "LSVM": make_profile("LSVM", f=0.9),
                "HOG": make_profile("HOG", f=0.7),
            },
        )
        # Bypass __init__ (heavy); call the method on a bare instance.
        deployment = AdaptiveDeployment.__new__(AdaptiveDeployment)
        deployment.exclude = ("LSVM",)
        assert deployment.select_algorithm(item) == "HOG"

    def test_no_exclusion_picks_best(self):
        from repro.core.adaptive import AdaptiveDeployment
        from repro.core.calibration import TrainingItem
        from tests.test_core_calibration import make_profile

        item = TrainingItem(
            name="T",
            profiles={
                "LSVM": make_profile("LSVM", f=0.9),
                "HOG": make_profile("HOG", f=0.7),
            },
        )
        deployment = AdaptiveDeployment.__new__(AdaptiveDeployment)
        deployment.exclude = ()
        assert deployment.select_algorithm(item) == "LSVM"

"""Tests for NMS and the real sliding-window HOG detector."""

import numpy as np
import pytest

from repro.detection.window_detector import (
    BLOCK_DIM,
    LinearHogTemplate,
    SlidingWindowHogDetector,
    WINDOW_BLOCKS,
    block_grid,
)
from repro.vision.nms import non_max_suppression


class TestNonMaxSuppression:
    def test_keeps_best_of_overlapping(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 10, 10], [50, 50, 10, 10]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = non_max_suppression(boxes, scores, 0.3)
        assert keep == [0, 2]

    def test_keeps_all_disjoint(self):
        boxes = np.array([[0, 0, 5, 5], [20, 0, 5, 5], [0, 20, 5, 5]])
        scores = np.array([0.5, 0.9, 0.7])
        keep = non_max_suppression(boxes, scores, 0.3)
        assert sorted(keep) == [0, 1, 2]
        assert keep[0] == 1  # highest score first

    def test_empty_input(self):
        assert non_max_suppression(np.zeros((0, 4)), np.zeros(0)) == []

    def test_threshold_one_keeps_everything(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        scores = np.array([0.9, 0.8])
        assert len(non_max_suppression(boxes, scores, 1.0)) == 2

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((2, 4)), np.zeros(3))
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((1, 4)), np.zeros(1), 2.0)


class TestBlockGrid:
    def test_shape(self, rng):
        grid = block_grid(rng.uniform(size=(80, 96)))
        assert grid.shape == (80 // 8 - 1, 96 // 8 - 1, BLOCK_DIM)

    def test_too_small_image(self, rng):
        grid = block_grid(rng.uniform(size=(8, 8)))
        assert grid.shape[0] == 0 or grid.size == 0

    def test_blocks_normalised(self, rng):
        grid = block_grid(rng.uniform(size=(64, 64)))
        norms = np.linalg.norm(grid, axis=2)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_matches_hog_descriptor(self, rng):
        """A 64x128 image's block grid flattens to its HOG vector."""
        from repro.vision.hog import hog_descriptor

        image = rng.uniform(size=(128, 64))
        grid = block_grid(image)
        flat = grid.reshape(-1)
        desc = hog_descriptor(image, resize=False)
        np.testing.assert_allclose(flat, desc, atol=1e-9)


class TestLinearHogTemplate:
    def test_fit_separates_classes(self, rng):
        dim = WINDOW_BLOCKS[0] * WINDOW_BLOCKS[1] * BLOCK_DIM
        center = rng.uniform(size=dim)
        positives = center + 0.1 * rng.normal(size=(30, dim))
        negatives = 0.1 * rng.normal(size=(30, dim))
        template = LinearHogTemplate.fit(positives, negatives)
        pos_score = (
            np.einsum(
                "abc,abc->",
                positives[0].reshape(
                    WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM
                ),
                template.weights,
            )
            + template.bias
        )
        neg_score = (
            np.einsum(
                "abc,abc->",
                negatives[0].reshape(
                    WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM
                ),
                template.weights,
            )
            + template.bias
        )
        assert pos_score > neg_score

    def test_rejects_empty_classes(self, rng):
        dim = WINDOW_BLOCKS[0] * WINDOW_BLOCKS[1] * BLOCK_DIM
        with pytest.raises(ValueError):
            LinearHogTemplate.fit(np.zeros((0, dim)), np.zeros((3, dim)))

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            LinearHogTemplate(weights=np.zeros((2, 2, 2)), bias=0.0)

    def test_score_map_empty_for_small_grid(self, rng):
        template = LinearHogTemplate(
            weights=np.zeros(
                (WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM)
            ),
            bias=0.0,
        )
        assert template.score_map(np.zeros((3, 3, BLOCK_DIM))).size == 0


@pytest.fixture(scope="module")
def trained_detector(dataset1):
    rng = np.random.default_rng(5)
    train_obs = []
    for record in dataset1.frames(0, 500, only_ground_truth=True):
        for cam in dataset1.camera_ids[:2]:
            train_obs.append(record.observations[cam])
    return SlidingWindowHogDetector.train(train_obs, rng)


class TestSlidingWindowDetector:
    def test_detects_people_better_than_chance(
        self, trained_detector, dataset1
    ):
        from repro.datasets.groundtruth import ground_truth_boxes
        from repro.detection.metrics import best_threshold

        rng = np.random.default_rng(6)
        frames = []
        for record in dataset1.frames(1000, 1400, only_ground_truth=True):
            obs = record.observation(dataset1.camera_ids[0])
            detections = trained_detector.detect(obs, rng, threshold=-0.8)
            frames.append((detections, ground_truth_boxes(obs)))
        _, counts = best_threshold(frames)
        assert counts.f_score > 0.35
        assert counts.precision > 0.35

    def test_detections_in_nominal_coordinates(
        self, trained_detector, dataset1
    ):
        rng = np.random.default_rng(7)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        env = dataset1.environment
        for det in trained_detector.detect(obs, rng, threshold=-0.5):
            assert -50 <= det.bbox.x <= env.width + 50
            assert -50 <= det.bbox.y <= env.height + 50

    def test_nms_prevents_duplicate_stacks(self, trained_detector, dataset1):
        rng = np.random.default_rng(8)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        detections = trained_detector.detect(obs, rng, threshold=-0.5)
        boxes = [d.bbox for d in detections]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert boxes[i].iou(boxes[j]) <= trained_detector.nms_iou + 0.01

    def test_truth_ids_assigned_by_overlap(self, trained_detector, dataset1):
        rng = np.random.default_rng(9)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        person_ids = {v.person_id for v in obs.objects}
        for det in trained_detector.detect(obs, rng, threshold=-0.3):
            if det.truth_id is not None:
                assert det.truth_id in person_ids

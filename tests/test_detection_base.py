"""Tests for bounding boxes and detection records."""

import numpy as np
import pytest

from repro.detection.base import BoundingBox, Detection


class TestBoundingBox:
    def test_area(self):
        assert BoundingBox(0, 0, 4, 5).area == 20

    def test_bottom_center(self):
        box = BoundingBox(10, 20, 6, 30)
        assert box.bottom_center == (13, 50)

    def test_iou_identical(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.iou(box) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(10, 10, 5, 5)
        assert a.iou(b) == 0.0

    def test_iou_half_overlap(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 10, 10)
        assert a.iou(b) == pytest.approx(50 / 150)

    def test_iou_symmetric(self):
        a = BoundingBox(0, 0, 8, 12)
        b = BoundingBox(3, 4, 9, 7)
        assert a.iou(b) == pytest.approx(b.iou(a))

    def test_iou_contained(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 5, 5)
        assert outer.iou(inner) == pytest.approx(25 / 100)

    def test_zero_area_box(self):
        a = BoundingBox(0, 0, 0, 0)
        b = BoundingBox(0, 0, 5, 5)
        assert a.iou(b) == 0.0

    def test_rejects_negative_dimensions(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -1, 5)

    def test_tuple_round_trip(self):
        box = BoundingBox(1.5, 2.5, 3.5, 4.5)
        assert BoundingBox.from_tuple(box.as_tuple()) == box


class TestDetection:
    def _detection(self, truth_id=None):
        return Detection(
            bbox=BoundingBox(0, 0, 10, 20),
            score=0.7,
            camera_id="cam1",
            frame_index=5,
            algorithm="HOG",
            truth_id=truth_id,
        )

    def test_true_positive_flag(self):
        assert self._detection(truth_id=3).is_true_positive
        assert not self._detection().is_true_positive

    def test_metadata_bytes_matches_paper(self):
        """8 B box + 4 B probability + 160 B colour feature = 172 B."""
        det = self._detection()
        det.color_feature = np.zeros(40)
        assert det.metadata_bytes() == 172

    def test_probability_defaults_nan(self):
        assert np.isnan(self._detection().probability)

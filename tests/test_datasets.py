"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.base import FrameRecord, VideoSegment
from repro.datasets.groundtruth import (
    ground_truth_boxes,
    persons_in_any_view,
    persons_in_view,
)
from repro.datasets.synthetic import DATASET_SPECS, make_dataset


class TestDatasetSpecs:
    def test_paper_datasets_present(self):
        # The paper's three datasets plus the night extension (#4).
        assert {1, 2, 3} <= set(DATASET_SPECS)

    def test_ground_truth_cadence_matches_paper(self):
        assert DATASET_SPECS[1].gt_every == 25
        assert DATASET_SPECS[2].gt_every == 10
        assert DATASET_SPECS[3].gt_every == 25

    def test_people_counts(self):
        assert DATASET_SPECS[1].num_people == 6
        assert 4 <= DATASET_SPECS[2].num_people <= 6
        assert DATASET_SPECS[3].num_people == 8

    def test_train_split_at_1000(self):
        for spec in DATASET_SPECS.values():
            assert spec.train_end == 1000
            assert spec.total_frames == 3000

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            make_dataset(9)


class TestSyntheticDataset:
    def test_four_cameras(self, dataset1):
        assert len(dataset1.camera_ids) == 4

    def test_has_ground_truth_every_25(self, dataset1):
        assert dataset1.has_ground_truth(0)
        assert dataset1.has_ground_truth(250)
        assert not dataset1.has_ground_truth(251)

    def test_frames_materialise_all_cameras(self, dataset1):
        records = dataset1.frames(0, 2)
        assert len(records) == 2
        assert set(records[0].observations) == set(dataset1.camera_ids)

    def test_only_ground_truth_filter(self, dataset1):
        records = dataset1.frames(0, 100, only_ground_truth=True)
        assert [r.frame_index for r in records] == [0, 25, 50, 75]

    def test_deterministic_regeneration(self):
        a = make_dataset(1)
        b = make_dataset(1)
        rec_a = a.frames(50, 51)[0]
        rec_b = b.frames(50, 51)[0]
        cam = a.camera_ids[0]
        va = rec_a.observation(cam).objects
        vb = rec_b.observation(cam).objects
        assert len(va) == len(vb)
        for x, y in zip(va, vb):
            assert x.bbox == y.bbox

    def test_replay_after_rewind(self, dataset1):
        """Requesting an earlier frame re-simulates deterministically."""
        first = dataset1.frames(30, 31)[0]
        dataset1.frames(60, 61)
        dataset1.clear_cache()
        again = dataset1.frames(30, 31)[0]
        cam = dataset1.camera_ids[0]
        assert (
            first.observation(cam).objects[0].bbox
            == again.observation(cam).objects[0].bbox
        )

    def test_training_and_test_segments(self, dataset1):
        train = dataset1.training_segment()
        test = dataset1.test_segment()
        assert train.start_frame == 0
        assert train.end_frame == 1000
        assert test.start_frame == 1000
        assert all(f.frame_index < 1000 for f in train.frames)
        assert all(f.frame_index >= 1000 for f in test.frames)

    def test_ground_homographies_invert_projection(self, dataset1):
        homographies = dataset1.ground_homographies()
        camera = dataset1.cameras[0]
        ground = np.array([3.0, 4.0])
        uv = camera.project_ground(ground)
        back = homographies[camera.camera_id].apply(uv)
        np.testing.assert_allclose(back, ground, atol=1e-6)

    def test_bad_frame_range_raises(self, dataset1):
        with pytest.raises(ValueError):
            dataset1.frames(10, 5)

    def test_cache_disabled(self):
        ds = make_dataset(1, cache_frames=False) if False else make_dataset(1)
        ds.cache_frames = False
        ds.frames(0, 1)
        assert ds._frame_cache == {}


class TestVideoSegment:
    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            VideoSegment(name="x", start_frame=5, end_frame=3, frames=[])

    def test_camera_frames(self, dataset1):
        segment = dataset1.segment(0, 60, only_ground_truth=True)
        cam = dataset1.camera_ids[1]
        obs = segment.camera_frames(cam)
        assert all(o.camera_id == cam for o in obs)

    def test_ground_truth_frames(self, dataset1):
        segment = dataset1.segment(0, 60)
        gt = segment.ground_truth_frames
        assert [f.frame_index for f in gt] == [0, 25, 50]


class TestGroundTruthHelpers:
    def test_boxes_match_objects(self, dataset1):
        record = dataset1.frames(0, 1)[0]
        obs = record.observation(dataset1.camera_ids[0])
        boxes = ground_truth_boxes(obs)
        assert len(boxes) == len(obs.objects)

    def test_occluded_can_be_excluded(self, dataset1):
        record = dataset1.frames(0, 1)[0]
        obs = record.observation(dataset1.camera_ids[0])
        full = ground_truth_boxes(obs, include_occluded=True)
        visible = ground_truth_boxes(obs, include_occluded=False)
        assert len(visible) <= len(full)

    def test_persons_in_any_view_superset(self, dataset1):
        record = dataset1.frames(0, 1)[0]
        union = persons_in_any_view(record.observations)
        for camera_id in dataset1.camera_ids:
            single = persons_in_view(record.observation(camera_id))
            assert single <= union

    def test_frame_record_unknown_camera(self, dataset1):
        record = dataset1.frames(0, 1)[0]
        with pytest.raises(KeyError):
            record.observation("nope")

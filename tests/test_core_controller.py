"""Tests for the EECS controller."""

import numpy as np
import pytest

from repro.core.calibration import TrainingItem, TrainingLibrary
from repro.core.config import EECSConfig
from repro.core.controller import EECSController
from repro.core.selection import AssessmentData
from repro.detection.base import BoundingBox, Detection
from repro.detection.scores import ScoreCalibrator
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.energy.model import ProcessingEnergyModel
from repro.geometry.homography import Homography
from repro.reid.matcher import CrossCameraMatcher
from tests.test_core_calibration import make_profile
from tests.test_core_selection import build_assessment

CAMERAS = ["c1", "c2"]


def fitted_calibrator():
    cal = ScoreCalibrator()
    scores = np.concatenate([
        np.random.default_rng(0).normal(1.0, 0.3, 100),
        np.random.default_rng(1).normal(-1.0, 0.3, 100),
    ])
    labels = np.concatenate([np.ones(100), np.zeros(100)])
    return cal.fit(scores, labels)


def library_with(cameras=CAMERAS):
    library = TrainingLibrary()
    for camera in cameras:
        profiles = {
            "GOOD": make_profile("GOOD", f=0.8, energy=1.0),
            "CHEAP": make_profile("CHEAP", f=0.6, energy=0.1),
        }
        for p in profiles.values():
            p.calibrator = fitted_calibrator()
        library.add(TrainingItem(name=f"T-{camera}", profiles=profiles))
    return library


@pytest.fixture()
def controller():
    matcher = CrossCameraMatcher(
        {c: Homography.identity() for c in CAMERAS},
        ground_radius=10.0,
        use_color=False,
    )
    ctrl = EECSController(EECSConfig(), library_with(), matcher)
    for camera in CAMERAS:
        ctrl.register_camera(
            camera,
            processing_model=ProcessingEnergyModel(width=360, height=288),
            communication_model=CommunicationEnergyModel(
                width=360, height=288
            ),
            battery=Battery(capacity_joules=10800.0),
        )
        ctrl.assign_training_item(camera, f"T-{camera}")
    return ctrl


class TestRegistration:
    def test_duplicate_camera_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.register_camera(
                "c1",
                ProcessingEnergyModel(width=10, height=10),
                CommunicationEnergyModel(width=10, height=10),
                Battery(),
            )

    def test_unknown_camera_raises(self, controller):
        with pytest.raises(KeyError):
            controller.camera("c9")

    def test_assign_unknown_item_raises(self, controller):
        with pytest.raises(KeyError):
            controller.assign_training_item("c1", "missing")


class TestBudgets:
    def test_frame_budget_follows_battery(self, controller):
        # 10800 J over 6 h at one frame per 2 s -> 1 J/frame.
        assert controller.frame_budget("c1") == pytest.approx(1.0)

    def test_camera_plan_respects_budget(self, controller):
        plan = controller.camera_plan("c1", budget_override=0.5)
        assert plan.best_algorithm == "CHEAP"
        plan = controller.camera_plan("c1", budget_override=5.0)
        assert plan.best_algorithm == "GOOD"

    def test_plan_none_when_nothing_affordable(self, controller):
        assert controller.camera_plan("c1", budget_override=0.01) is None

    def test_plan_none_without_matched_item(self, controller):
        controller.camera("c1").matched_item = None
        assert controller.camera_plan("c1") is None


class TestCalibrateProbabilities:
    def test_fills_probabilities(self, controller):
        det = Detection(
            bbox=BoundingBox(0, 0, 10, 20),
            score=1.2,
            camera_id="c1",
            frame_index=0,
            algorithm="GOOD",
        )
        controller.calibrate_probabilities("c1", [det])
        assert 0.0 <= det.probability <= 1.0
        assert det.probability > 0.5  # high score -> high probability


class TestSelect:
    def _assessment(self):
        return build_assessment({
            "c1": {
                "GOOD": [(1, 0.9), (2, 0.9), (3, 0.9)],
                "CHEAP": [(1, 0.8), (2, 0.8), (3, 0.8)],
            },
            "c2": {
                "GOOD": [(1, 0.9)],
                "CHEAP": [(1, 0.8)],
            },
        })

    def test_full_pipeline(self, controller):
        decision = controller.select(self._assessment())
        assert decision.assignment  # non-empty
        assert decision.baseline.num_objects >= 3
        assert decision.achieved.meets(decision.desired)

    def test_subset_drops_redundant_camera(self, controller):
        decision = controller.select(
            self._assessment(), enable_downgrade=False
        )
        # c1 alone meets 85% of the baseline object count.
        assert decision.active_cameras == ["c1"]

    def test_downgrade_switches_to_cheap(self, controller):
        decision = controller.select(self._assessment())
        assert decision.assignment["c1"] == "CHEAP"

    def test_no_subset_keeps_all(self, controller):
        decision = controller.select(
            self._assessment(),
            enable_subset=False,
            enable_downgrade=False,
        )
        assert set(decision.active_cameras) == {"c1", "c2"}

    def test_budget_override_forces_cheap(self, controller):
        decision = controller.select(
            self._assessment(),
            budget_overrides={"c1": 0.5, "c2": 0.5},
        )
        assert all(a == "CHEAP" for a in decision.assignment.values())

    def test_assessment_without_best_algorithm_falls_back(self, controller):
        """A camera whose budget-best algorithm has no assessment data
        falls back to the best assessed one."""
        assessment = build_assessment({
            "c1": {"CHEAP": [(1, 0.8), (2, 0.8)]},
            "c2": {"CHEAP": [(3, 0.8)]},
        })
        decision = controller.select(assessment)
        assert all(a == "CHEAP" for a in decision.assignment.values())

    def test_infeasible_budget_raises(self, controller):
        with pytest.raises(RuntimeError):
            controller.select(
                self._assessment(),
                budget_overrides={"c1": 0.001, "c2": 0.001},
            )

    def test_receive_features_requires_comparator(self, controller):
        with pytest.raises(RuntimeError):
            controller.receive_features("c1", np.zeros((5, 10)))

"""Golden regression: the engine refactor is bit-identical.

The fixtures under ``tests/goldens/`` were captured from the
pre-refactor ``SimulationRunner``/``run_chaos`` implementations (see
``golden_utils.capture``).  These tests re-run the same configurations
through the unified deployment engine and compare every ``RunResult``
/ ``ChaosResult`` field — floats by exact equality, since JSON
round-trips Python doubles exactly — at ``workers=1`` and
``workers>1``.

If one of these fails, the engine's behaviour has drifted from the
historical implementation; that is a bug in the change, not in the
fixture.  Regenerate goldens (``python tests/golden_utils.py``) only
for a change that *intends* to alter simulation output.
"""

import json

import pytest

from tests.golden_utils import (
    GOLDEN_CHAOS_CONFIGS,
    chaos_result_fingerprint,
    collect_chaos_goldens,
    golden_run_configs,
    load_golden,
    make_golden_runner,
    run_result_fingerprint,
)


def normalize(fingerprint):
    """Match the storage representation (tuples become JSON arrays)."""
    return json.loads(json.dumps(fingerprint))


@pytest.fixture(scope="module")
def golden_runner():
    return make_golden_runner()


@pytest.fixture(scope="module")
def run_goldens():
    return load_golden("run_results")


@pytest.fixture(scope="module")
def chaos_goldens():
    return load_golden("chaos_results")


class TestRunGoldens:
    @pytest.mark.parametrize(
        "name", ["all_best", "subset", "full", "fixed"]
    )
    def test_serial_matches_golden(self, golden_runner, run_goldens, name):
        configs = golden_run_configs(golden_runner.dataset.camera_ids)
        result = golden_runner.run(**configs[name])
        fingerprint = normalize(run_result_fingerprint(result))
        assert fingerprint == run_goldens[name], (
            f"policy {name!r} drifted from the pre-refactor golden"
        )

    @pytest.mark.parametrize("name", ["all_best", "full"])
    def test_parallel_matches_golden(
        self, golden_runner, run_goldens, name
    ):
        """workers>1 must reproduce the serial (golden) run exactly."""
        configs = golden_run_configs(golden_runner.dataset.camera_ids)
        result = golden_runner.run(workers=2, **configs[name])
        assert normalize(run_result_fingerprint(result)) == run_goldens[name]

    def test_every_field_compared(self, golden_runner, run_goldens):
        """The fingerprint covers the whole public RunResult surface."""
        configs = golden_run_configs(golden_runner.dataset.camera_ids)
        result = golden_runner.run(**configs["full"])
        missing = set(vars(result)) - set(run_result_fingerprint(result))
        assert not missing, f"fields not pinned by the golden: {missing}"


class TestChaosGoldens:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CHAOS_CONFIGS))
    def test_matches_golden(self, golden_runner, chaos_goldens, name):
        fingerprints = collect_chaos_goldens(golden_runner)
        assert normalize(fingerprints[name]) == chaos_goldens[name], (
            f"chaos config {name!r} drifted from the pre-refactor golden"
        )

    def test_every_field_compared(self, golden_runner):
        from repro.experiments.faults import ChaosSpec, run_chaos

        result = run_chaos(
            ChaosSpec(**GOLDEN_CHAOS_CONFIGS["zero_fault"]), golden_runner
        )
        fingerprint = chaos_result_fingerprint(result)
        missing = set(vars(result)) - set(fingerprint) - {"spec"}
        assert not missing, f"fields not pinned by the golden: {missing}"

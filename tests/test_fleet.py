"""Fleet-scale coordination: cells, coordinator, peers, tiled worlds.

The tentpole guarantees pinned here:

* one cell collapses the hierarchy to the flat ``subset`` protocol
  **bit for bit** (every RunResult field bar ``mode``);
* multi-cell runs are deterministic, conserve the budget envelope, and
  kill-and-resume byte-identically with per-cell controller state in
  the checkpoint;
* the ``peer`` policy needs no controller and its negotiation settles
  to a maximal independent set over the ring;
* tiled fleet worlds namespace identities and never fuse across tiles;
* a cell that loses its leader re-elects deterministically over the
  survivors (the resilience ladder's transitions reach cell
  controllers unchanged).
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointConfig, CheckpointInterrupted
from repro.checkpoint.codec import run_result_to_dict
from repro.core.controller import CAMERA_ACTIVE, CAMERA_QUARANTINED
from repro.engine import (
    CellPolicy,
    DeploymentEngine,
    PeerPolicy,
    SubsetPolicy,
    available_policies,
    fleet_context,
    resolve_policy,
    shared_context,
)
from repro.engine.spec import DeploymentSpec
from repro.fleet.cells import (
    CellLayout,
    normalize_cells,
    partition_cameras,
    validate_cells_value,
)
from repro.fleet.coordinator import (
    MAX_SCALE_STEP,
    BudgetCoordinator,
    CellReading,
)
from repro.fleet.peer import negotiate_activation, ring_neighbors
from repro.fleet.runtime import FleetRuntime
from repro.fleet.world import (
    PERSON_ID_STRIDE,
    TILE_PITCH_M,
    TiledFleetDataset,
    tile_training_library,
)
from tests.golden_utils import run_result_fingerprint

WINDOW = {"start": 1000, "end": 1300}


@pytest.fixture(scope="module")
def ctx1():
    return shared_context(1)


@pytest.fixture(scope="module")
def fleet8():
    return fleet_context(8)


def run_engine(context, policy, cells=None, **kwargs):
    engine = DeploymentEngine(context, seed=2017)
    try:
        return engine.run(
            policy, budget=2.0, cells=cells, **{**WINDOW, **kwargs}
        )
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Cell layouts
# ----------------------------------------------------------------------
class TestCellLayout:
    CAMS = ["a", "b", "c", "d", "e"]

    def test_partition_contiguous_near_even(self):
        assert partition_cameras(self.CAMS, 2) == (
            ("a", "b", "c"),
            ("d", "e"),
        )

    def test_normalize_none_is_one_fleet_wide_cell(self):
        layout = normalize_cells(None, self.CAMS)
        assert layout.num_cells == 1
        assert layout.cells == (tuple(self.CAMS),)

    def test_normalize_int_partitions(self):
        layout = normalize_cells(3, self.CAMS)
        assert layout.num_cells == 3
        assert layout.camera_ids == self.CAMS

    def test_cell_ids_and_membership(self):
        layout = normalize_cells(2, self.CAMS)
        assert layout.cell_ids == ["cell000", "cell001"]
        assert layout.cell_of("e") == "cell001"
        assert layout.members("cell000") == ("a", "b", "c")
        with pytest.raises(KeyError, match="no cell"):
            layout.cell_of("zz")
        with pytest.raises(KeyError, match="unknown cell"):
            layout.members("cell999")

    def test_round_trips_through_dict(self):
        layout = normalize_cells((("a", "b"), ("c", "d", "e")), self.CAMS)
        assert CellLayout.from_dict(layout.to_dict()) == layout

    def test_unknown_camera_names_field_and_index(self):
        with pytest.raises(ValueError, match=r"cells\[1\] names unknown"):
            normalize_cells((("a", "b"), ("zz",), ("c", "d", "e")), self.CAMS)

    def test_unassigned_cameras_rejected(self):
        with pytest.raises(ValueError, match="leaves cameras unassigned"):
            normalize_cells((("a", "b"),), self.CAMS)

    @pytest.mark.parametrize(
        "bad,message",
        [
            (0, r"cells must be >= 1"),
            (-2, r"cells must be >= 1"),
            (True, r"cells must be a cell count"),
            ("two", r"cells must be a cell count"),
            ((), r"at least one cell"),
            ((("a",), ()), r"cells\[1\] is empty"),
            ((("a", 7),), r"non-string camera id"),
            ((("a", "b"), ("b",)), r"camera 'b' appears in more"),
        ],
    )
    def test_structural_validation_names_field(self, bad, message):
        with pytest.raises(ValueError, match=message):
            validate_cells_value(bad, num_cameras=5)

    def test_count_exceeding_fleet_named(self):
        with pytest.raises(
            ValueError, match="cell count 9 exceeds the fleet's 5 cameras"
        ):
            validate_cells_value(9, num_cameras=5)

    def test_custom_field_name_in_errors(self):
        with pytest.raises(ValueError, match="layout must be >= 1"):
            validate_cells_value(0, field="layout")


# ----------------------------------------------------------------------
# Budget coordinator
# ----------------------------------------------------------------------
class TestBudgetCoordinator:
    def reading(self, cell_id, cams, achieved, desired):
        return CellReading(
            cell_id=cell_id,
            num_cameras=cams,
            achieved_objects=achieved,
            desired_objects=desired,
        )

    def test_first_round_scales_are_exactly_one(self):
        coord = BudgetCoordinator()
        scales = coord.allocate(["cell000", "cell001"], {
            "cell000": 2, "cell001": 2,
        })
        assert scales == {"cell000": 1.0, "cell001": 1.0}

    def test_single_cell_is_identity_even_with_readings(self):
        coord = BudgetCoordinator()
        coord.readings["cell000"] = self.reading("cell000", 4, 30.0, 10.0)
        scales = coord.allocate(["cell000"], {"cell000": 4})
        assert scales == {"cell000": 1.0}

    def test_envelope_conserved_and_step_clamped(self):
        coord = BudgetCoordinator()
        # cell000 overshoots 3x (sheds budget), cell001 misses by half
        # (gains budget); both raw scales hit the +/-25% clamp.
        coord.readings["cell000"] = self.reading("cell000", 4, 30.0, 10.0)
        coord.readings["cell001"] = self.reading("cell001", 4, 5.0, 10.0)
        cams = {"cell000": 4, "cell001": 4}
        scales = coord.allocate(["cell000", "cell001"], cams)
        assert scales["cell000"] < 1.0 < scales["cell001"]
        weighted_mean = sum(
            scales[c] * cams[c] for c in cams
        ) / sum(cams.values())
        assert weighted_mean == pytest.approx(1.0)
        raw_ratio = (1.0 + MAX_SCALE_STEP) / (1.0 - MAX_SCALE_STEP)
        assert scales["cell001"] / scales["cell000"] == pytest.approx(
            raw_ratio
        )

    def test_unreported_cell_gets_neutral_raw_scale(self):
        coord = BudgetCoordinator()
        coord.readings["cell000"] = self.reading("cell000", 2, 5.0, 10.0)
        scales = coord.allocate(
            ["cell000", "cell001"], {"cell000": 2, "cell001": 2}
        )
        assert scales["cell000"] > scales["cell001"]

    def test_fold_single_decision_is_the_same_object(self, ctx1):
        engine = DeploymentEngine(ctx1, seed=2017)
        result = engine.run("subset", budget=2.0, **WINDOW)
        decision = result.decisions[0]
        assert BudgetCoordinator.fold([decision]) is decision

    def test_fold_merges_and_weights(self, ctx1):
        engine = DeploymentEngine(ctx1, seed=2017)
        result = engine.run("subset", budget=2.0, **WINDOW)
        d = result.decisions[0]
        folded = BudgetCoordinator.fold([d, d])
        assert folded.assignment == d.assignment
        assert folded.baseline.num_objects == 2 * d.baseline.num_objects
        assert folded.baseline.mean_probability == pytest.approx(
            d.baseline.mean_probability
        )
        assert folded.desired.min_objects == 2 * d.desired.min_objects
        assert folded.ranked_camera_ids == (
            d.ranked_camera_ids + d.ranked_camera_ids
        )

    def test_fold_zero_raises(self):
        with pytest.raises(ValueError, match="zero cell decisions"):
            BudgetCoordinator.fold([])

    def test_snapshot_restore_round_trip(self):
        coord = BudgetCoordinator()
        coord.readings["cell000"] = self.reading("cell000", 4, 30.0, 10.0)
        coord.allocate(
            ["cell000", "cell001"], {"cell000": 4, "cell001": 1}
        )
        state = json.loads(json.dumps(coord.snapshot()))
        fresh = BudgetCoordinator()
        fresh.restore(state)
        assert fresh.scales == coord.scales
        assert fresh.readings == coord.readings


# ----------------------------------------------------------------------
# Peer negotiation
# ----------------------------------------------------------------------
class TestPeerNegotiation:
    def test_ring_shapes(self):
        assert ring_neighbors(["a"]) == {"a": []}
        assert ring_neighbors(["a", "b"]) == {"a": ["b"], "b": ["a"]}
        ring = ring_neighbors(["a", "b", "c", "d"])
        assert ring["a"] == ["d", "b"]
        assert ring["c"] == ["b", "d"]

    def test_single_camera_short_circuits(self):
        outcome = negotiate_activation(["solo"], {"solo": 3.0})
        assert outcome.active == {"solo": True}
        assert outcome.energy_by_camera == {"solo": 0.0}
        assert outcome.rounds == 0

    def fixed_point(self, camera_ids, utilities):
        outcome = negotiate_activation(camera_ids, utilities)
        ring = ring_neighbors(camera_ids)
        key = lambda c: (utilities[c], c)  # noqa: E731
        for camera_id in camera_ids:
            neighbor_keys = [
                key(n) for n in ring[camera_id] if outcome.active[n]
            ]
            if outcome.active[camera_id]:
                # Active: no active neighbour dominates it.
                assert all(k < key(camera_id) for k in neighbor_keys)
            else:
                # Standby: some active neighbour covers its area.
                assert any(k > key(camera_id) for k in neighbor_keys)
        return outcome

    def test_fixed_point_is_maximal_independent_set(self):
        cams = [f"cam{i}" for i in range(8)]
        utilities = {c: float((7 * i) % 5) + i * 0.01
                     for i, c in enumerate(cams)}
        outcome = self.fixed_point(cams, utilities)
        best = max(cams, key=lambda c: (utilities[c], c))
        assert outcome.active[best]
        assert outcome.claims_sent > 0
        assert all(e > 0 for e in outcome.energy_by_camera.values())

    def test_equal_utilities_break_ties_by_id(self):
        cams = ["camA", "camB", "camC", "camD"]
        outcome = self.fixed_point(cams, {c: 1.0 for c in cams})
        # Ids order the ring deterministically: D beats its neighbours
        # A and C; B survives because both its neighbours backed off.
        assert outcome.active == {
            "camA": False, "camB": True, "camC": False, "camD": True,
        }

    def test_negotiation_is_deterministic(self):
        cams = [f"cam{i}" for i in range(6)]
        utilities = {c: float(i % 3) for i, c in enumerate(cams)}
        first = negotiate_activation(cams, utilities)
        second = negotiate_activation(cams, utilities)
        assert first.active == second.active
        assert first.energy_by_camera == second.energy_by_camera
        assert first.claims_sent == second.claims_sent

    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError, match="empty fleet"):
            negotiate_activation([], {})


# ----------------------------------------------------------------------
# Tiled fleet worlds
# ----------------------------------------------------------------------
class TestTiledFleetWorld:
    def test_camera_namespacing_and_spec(self, ctx1, fleet8):
        dataset = fleet8.dataset
        assert dataset.spec.name == "lab-fleet8"
        assert dataset.spec.num_cameras == 8
        assert dataset.camera_ids[0] == "t000.lab-cam1"
        assert dataset.camera_ids[4] == "t001.lab-cam1"
        assert dataset.base_camera_of("t001.lab-cam2") == "lab-cam2"
        with pytest.raises(KeyError, match="unknown fleet camera"):
            dataset.base_camera_of("t099.lab-cam1")

    def test_partial_last_tile(self, ctx1):
        dataset = TiledFleetDataset(ctx1.dataset, 6)
        assert len(dataset.camera_ids) == 6
        assert dataset.num_tiles == 2

    def test_tiles_share_images_and_offset_identities(self, ctx1, fleet8):
        record = fleet8.dataset.frames(1000, 1001)[0]
        base = record.observations["t000.lab-cam1"]
        tiled = record.observations["t001.lab-cam1"]
        assert tiled.image is base.image  # shared, not copied
        base_ids = {view.person_id for view in base.objects}
        tiled_ids = {view.person_id for view in tiled.objects}
        assert tiled_ids == {pid + PERSON_ID_STRIDE for pid in base_ids}
        for b, t in zip(base.objects, tiled.objects):
            dx = t.ground_xy[0] - b.ground_xy[0]
            dy = t.ground_xy[1] - b.ground_xy[1]
            assert (dx, dy) != (0.0, 0.0)
            assert max(abs(dx), abs(dy)) == pytest.approx(TILE_PITCH_M)

    def test_homographies_compose_tile_translation(self, fleet8):
        import numpy as np

        maps = fleet8.dataset.ground_homographies()
        pixel = np.array([[100.0, 100.0]])
        p0 = maps["t000.lab-cam1"].apply(pixel)[0]
        p1 = maps["t001.lab-cam1"].apply(pixel)[0]
        offset = (p1[0] - p0[0], p1[1] - p0[1])
        assert max(abs(offset[0]), abs(offset[1])) == pytest.approx(
            TILE_PITCH_M
        )

    def test_matcher_never_groups_across_tiles(self, fleet8):
        """Tile pitch dwarfs the re-id gating radius, so a group's
        members always come from one tile."""
        engine = DeploymentEngine(fleet8, seed=2017)
        record = fleet8.dataset.frames(1000, 1001)[0]
        detections = []
        for camera_id in fleet8.dataset.camera_ids:
            detector = fleet8.detectors["HOG"]
            import numpy as np

            dets = detector.detect(
                record.observation(camera_id), np.random.default_rng(7)
            )
            for det in dets:
                det.probability = 0.9
            detections.extend(dets)
        groups = fleet8.matcher.group(detections)
        assert groups
        for group in groups:
            tiles = {
                camera_id.split(".")[0] for camera_id in group.camera_ids
            }
            assert len(tiles) == 1

    def test_training_library_aliases_base_profiles(self, ctx1, fleet8):
        base_item = ctx1.library.get("T-lab-cam2")
        fleet_item = fleet8.library.get("T-t001.lab-cam2")
        assert fleet_item.profiles is base_item.profiles
        assert fleet8.library.cache is ctx1.library.cache

    def test_tile_training_library_rejects_unknown_base(self, ctx1):
        with pytest.raises(KeyError):
            tile_training_library(ctx1.library, {"t000.x": "T-nope"})


# ----------------------------------------------------------------------
# The cell policy: exactness, determinism, checkpointing
# ----------------------------------------------------------------------
class TestCellPolicy:
    def test_registered_like_any_policy(self):
        names = available_policies()
        assert "cell" in names and "peer" in names and "cell_full" in names
        assert isinstance(resolve_policy("cell"), CellPolicy)
        assert isinstance(resolve_policy("peer"), PeerPolicy)

    def test_entropy_aliases_subset(self):
        assert CellPolicy().entropy_token() == SubsetPolicy().entropy_token()
        assert PeerPolicy().entropy_token() != SubsetPolicy().entropy_token()

    def test_one_cell_bit_identical_to_flat_subset(self, ctx1):
        """The tentpole guarantee: at one cell the hierarchy IS the
        flat protocol — every RunResult field bar ``mode`` matches
        bit for bit."""
        flat = run_engine(ctx1, "subset")
        cell = run_engine(ctx1, "cell")
        flat_fp = run_result_fingerprint(flat)
        cell_fp = run_result_fingerprint(cell)
        assert flat_fp.pop("mode") == "subset"
        assert cell_fp.pop("mode") == "cell"
        assert cell_fp == flat_fp

    def test_multi_cell_deterministic(self, fleet8):
        first = run_engine(fleet8, "cell", cells=2)
        second = run_engine(fleet8, "cell", cells=2)
        assert run_result_fingerprint(first) == run_result_fingerprint(
            second
        )
        # Both cells contribute cameras to the folded assignment.
        layout = normalize_cells(2, fleet8.dataset.camera_ids)
        for decision in first.decisions:
            cells_used = {
                layout.cell_of(camera_id)
                for camera_id in decision.assignment
            }
            assert len(cells_used) == 2

    def test_multi_cell_coordination_costs_joules(self, fleet8):
        flat = run_engine(fleet8, "subset")
        sharded = run_engine(fleet8, "cell", cells=2)
        assert (
            sharded.communication_joules > flat.communication_joules
        ), "coordinator/cell messaging must land in the energy meter"

    def test_explicit_cell_groups_accepted(self, fleet8):
        ids = fleet8.dataset.camera_ids
        explicit = (tuple(ids[:3]), tuple(ids[3:]))
        result = run_engine(fleet8, "cell", cells=explicit)
        assert result.humans_present > 0

    def test_cell_telemetry_labels(self, fleet8):
        from repro.telemetry import Telemetry

        telemetry = Telemetry(run_id="fleet-test")
        engine = DeploymentEngine(fleet8, seed=2017, telemetry=telemetry)
        engine.run("cell", budget=2.0, cells=2, **WINDOW)
        snapshot = telemetry.registry.snapshot()
        series = {
            (entry["name"], tuple(sorted(s["labels"].items())))
            for entry in snapshot["metrics"]
            for s in entry["series"]
        }
        for cell_id in ("cell000", "cell001"):
            assert (
                "fleet_cell_selections_total", (("cell", cell_id),)
            ) in series
            assert (
                "fleet_cell_budget_scale", (("cell", cell_id),)
            ) in series
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert "fleet_coordination_messages_total" in names
        assert "fleet_coordination_joules_total" in names
        spans = [
            span for span in telemetry.tracer.spans
            if span.name == "cell_select"
        ]
        assert spans
        assert {span.attributes["cell"] for span in spans} == {
            "cell000", "cell001",
        }

    def test_kill_and_resume_byte_identical(self, fleet8, tmp_path):
        """Crash a 2-cell run mid-flight; the resumed run's RunResult
        serialises to the same bytes as an uninterrupted one."""
        from repro.checkpoint import RunCheckpointer

        reference = run_engine(fleet8, "cell", cells=2)

        engine = DeploymentEngine(fleet8, seed=2017)
        with pytest.raises(CheckpointInterrupted):
            engine.run(
                "cell",
                budget=2.0,
                cells=2,
                checkpointer=RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=0)
                ),
                **WINDOW,
            )
        engine.close()

        resumed_engine = DeploymentEngine(fleet8, seed=2017)
        resumed = resumed_engine.run(
            "cell",
            budget=2.0,
            cells=2,
            checkpointer=RunCheckpointer(
                CheckpointConfig(directory=tmp_path, resume=True)
            ),
            **WINDOW,
        )
        resumed_engine.close()
        assert json.dumps(
            run_result_to_dict(resumed), sort_keys=True
        ) == json.dumps(run_result_to_dict(reference), sort_keys=True)

    def test_resilience_layer_inert_with_cells(self, fleet8):
        from repro.resilience.ladder import ResilienceConfig

        plain = run_engine(fleet8, "cell", cells=2)
        guarded = run_engine(
            fleet8, "cell", cells=2,
            resilience=ResilienceConfig(enabled=True),
        )
        assert run_result_fingerprint(plain) == run_result_fingerprint(
            guarded
        )


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------
class TestLeaderElection:
    def make_runtime(self, fleet8, telemetry=None):
        engine = DeploymentEngine(fleet8, seed=2017, telemetry=telemetry)
        layout = normalize_cells(2, fleet8.dataset.camera_ids)
        runtime = FleetRuntime(
            layout,
            controller_factory=lambda ids: engine.build_controller(
                camera_ids=ids
            ),
            telemetry=telemetry,
        )
        return engine, layout, runtime

    def test_initial_leaders_are_first_members(self, fleet8):
        _, layout, runtime = self.make_runtime(fleet8)
        assert runtime.leaders == {
            "cell000": layout.cells[0][0],
            "cell001": layout.cells[1][0],
        }

    def test_quarantined_leader_reelected_over_survivors(self, fleet8):
        from repro.telemetry import Telemetry

        telemetry = Telemetry(run_id="election")
        _, layout, runtime = self.make_runtime(fleet8, telemetry)
        old = runtime.leaders["cell000"]
        runtime.set_camera_mode(old, CAMERA_QUARANTINED)
        transitions = runtime.ensure_leaders()
        new = layout.cells[0][1]
        assert transitions == [("cell000", old, new)]
        assert runtime.leaders["cell000"] == new
        assert runtime.leaders["cell001"] == layout.cells[1][0]
        events = telemetry.events.by_kind("cell_leader_elected")
        assert len(events) == 1
        assert events[0].detail["cell"] == "cell000"
        assert events[0].detail["previous_leader"] == old
        assert events[0].node_id == new

    def test_recovered_leader_not_displaced(self, fleet8):
        _, layout, runtime = self.make_runtime(fleet8)
        old = runtime.leaders["cell000"]
        runtime.set_camera_mode(old, CAMERA_QUARANTINED)
        runtime.ensure_leaders()
        runtime.set_camera_mode(old, CAMERA_ACTIVE)
        assert runtime.ensure_leaders() == []
        assert runtime.leaders["cell000"] == layout.cells[0][1]

    def test_fully_lost_cell_keeps_leader_on_record(self, fleet8):
        _, layout, runtime = self.make_runtime(fleet8)
        for camera_id in layout.cells[0]:
            runtime.set_camera_mode(camera_id, CAMERA_QUARANTINED)
        assert runtime.ensure_leaders() == []
        assert runtime.leaders["cell000"] == layout.cells[0][0]

    def test_engine_mirrors_ladder_transitions_into_cells(self, fleet8):
        """The engine's mode seam routes into the owning cell
        controller, so losing a local controller mid-run re-elects."""
        engine, layout, runtime = self.make_runtime(fleet8)
        engine.attach_fleet(runtime)
        leader = runtime.leaders["cell000"]
        engine._set_camera_mode(leader, CAMERA_QUARANTINED)
        cell_state = runtime.controllers["cell000"].camera(leader)
        assert cell_state.mode == CAMERA_QUARANTINED
        assert engine.controller.camera(leader).mode == CAMERA_QUARANTINED
        runtime.ensure_leaders()
        assert runtime.leaders["cell000"] == layout.cells[0][1]


# ----------------------------------------------------------------------
# The peer policy
# ----------------------------------------------------------------------
class TestPeerPolicy:
    def test_peer_smoke_four_cameras(self, ctx1):
        result = run_engine(ctx1, "peer")
        assert result.mode == "peer"
        assert result.humans_present > 0
        assert result.humans_detected > 0
        for decision in result.decisions:
            assert decision.assignment
            assert decision.ranked_camera_ids

    def test_peer_negotiation_charges_meter(self, ctx1):
        """Claim messages cost Joules and land in the energy meter —
        the counters and the RunResult must both see them."""
        from repro.telemetry import Telemetry

        telemetry = Telemetry(run_id="peer-test")
        engine = DeploymentEngine(ctx1, seed=2017, telemetry=telemetry)
        result = engine.run("peer", budget=2.0, **WINDOW)
        engine.close()
        assert result.communication_joules > 0
        snapshot = telemetry.registry.snapshot()
        values = {
            entry["name"]: sum(s["value"] for s in entry["series"])
            for entry in snapshot["metrics"]
            if entry["type"] != "histogram"
        }
        assert values.get("peer_negotiation_claims_total", 0) > 0
        assert values.get("peer_negotiation_rounds_total", 0) > 0
        assert values.get("peer_negotiation_joules_total", 0) > 0

    def test_peer_deterministic(self, fleet8):
        first = run_engine(fleet8, "peer")
        second = run_engine(fleet8, "peer")
        assert run_result_fingerprint(first) == run_result_fingerprint(
            second
        )

    def test_peer_standby_cameras_exist_at_scale(self, fleet8):
        """On an 8-camera ring with real utilities the negotiation
        must actually shed cameras — otherwise it degenerates to
        all-best."""
        result = run_engine(fleet8, "peer")
        for decision in result.decisions:
            assert 0 < decision.num_active < 8


# ----------------------------------------------------------------------
# DeploymentSpec fleet validation (construction-time fail-fast)
# ----------------------------------------------------------------------
class TestDeploymentSpecFleet:
    def test_duplicate_camera_across_cells_rejected(self):
        with pytest.raises(
            ValueError, match="cells: camera 'a' appears in more"
        ):
            DeploymentSpec(
                dataset_number=1,
                policy="cell",
                cells=(("a", "b"), ("a", "c")),
            )

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError, match=r"cells\[1\] is empty"):
            DeploymentSpec(
                dataset_number=1, policy="cell", cells=(("a", "b"), ())
            )

    def test_cell_count_exceeding_cameras_rejected(self):
        with pytest.raises(
            ValueError, match="cell count 9 exceeds the fleet's 4 cameras"
        ):
            DeploymentSpec(dataset_number=1, policy="cell", cells=9)

    def test_cell_count_checked_against_fleet_cameras(self):
        with pytest.raises(
            ValueError, match="cell count 9 exceeds the fleet's 8 cameras"
        ):
            DeploymentSpec(
                dataset_number=1, policy="cell", fleet_cameras=8, cells=9
            )
        # The same count is fine once the fleet is big enough.
        DeploymentSpec(
            dataset_number=1, policy="cell", fleet_cameras=36, cells=9
        )

    def test_fleet_cameras_validated(self):
        with pytest.raises(ValueError, match="fleet_cameras must be >= 1"):
            DeploymentSpec(dataset_number=1, fleet_cameras=0)

    def test_spec_executes_cell_run(self, fleet8):
        spec = DeploymentSpec(
            dataset_number=1,
            policy="cell",
            budget=2.0,
            fleet_cameras=8,
            cells=2,
            **WINDOW,
        )
        engine = DeploymentEngine(fleet8, seed=2017)
        result = spec.execute(engine=engine)
        engine.close()
        assert result.mode == "cell"
        assert result.humans_present > 0

"""Tests for the pinhole camera model."""

import math

import numpy as np
import pytest

from repro.geometry.camera import CameraIntrinsics, CameraPose, PinholeCamera


@pytest.fixture()
def camera():
    intrinsics = CameraIntrinsics(focal_px=320.0, width=360, height=288)
    pose = CameraPose(x=-2.0, y=-2.0, z=2.5, yaw=math.pi / 4, pitch=0.2)
    return PinholeCamera(intrinsics, pose, camera_id="test-cam")


class TestCameraIntrinsics:
    def test_principal_point_defaults_to_center(self):
        k = CameraIntrinsics(focal_px=100, width=200, height=100)
        assert k.cx == 100.0
        assert k.cy == 50.0

    def test_explicit_principal_point_kept(self):
        k = CameraIntrinsics(focal_px=100, width=200, height=100, cx=90, cy=45)
        assert k.cx == 90
        assert k.cy == 45

    def test_matrix_structure(self):
        k = CameraIntrinsics(focal_px=123.0, width=100, height=80)
        m = k.matrix
        assert m[0, 0] == 123.0
        assert m[1, 1] == 123.0
        assert m[2, 2] == 1.0
        assert m[0, 1] == 0.0

    def test_rejects_nonpositive_focal(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(focal_px=0, width=10, height=10)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(focal_px=10, width=0, height=10)

    def test_pixels(self):
        k = CameraIntrinsics(focal_px=10, width=360, height=288)
        assert k.pixels == 360 * 288


class TestCameraPoseRotation:
    def test_rotation_is_orthonormal(self):
        pose = CameraPose(x=0, y=0, z=2, yaw=0.7, pitch=0.3)
        r = pose.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)

    def test_rotation_is_right_handed(self):
        pose = CameraPose(x=0, y=0, z=2, yaw=1.2, pitch=0.25)
        assert np.linalg.det(pose.rotation) == pytest.approx(1.0)

    def test_down_vector_points_downward(self):
        """Positive image y must run towards the ground (z decreasing)."""
        pose = CameraPose(x=0, y=0, z=2, yaw=0.5, pitch=0.2)
        down = pose.rotation[1]
        assert down[2] < 0

    def test_forward_points_along_yaw(self):
        pose = CameraPose(x=0, y=0, z=2, yaw=0.0, pitch=0.0)
        np.testing.assert_allclose(pose.rotation[2], [1, 0, 0], atol=1e-12)


class TestProjection:
    def test_point_on_optical_axis_hits_center(self):
        intrinsics = CameraIntrinsics(focal_px=300, width=400, height=300)
        pose = CameraPose(x=0, y=0, z=1.0, yaw=0.0, pitch=0.0)
        cam = PinholeCamera(intrinsics, pose)
        uv = cam.project(np.array([5.0, 0.0, 1.0]))
        np.testing.assert_allclose(uv, [200.0, 150.0], atol=1e-9)

    def test_higher_points_project_above(self, camera):
        foot = camera.project(np.array([2.0, 2.0, 0.0]))
        head = camera.project(np.array([2.0, 2.0, 1.7]))
        assert head[1] < foot[1]

    def test_point_behind_camera_is_nan(self, camera):
        uv = camera.project(np.array([-10.0, -10.0, 0.0]))
        assert np.all(np.isnan(uv))

    def test_batch_projection_matches_single(self, camera):
        pts = np.array([[1.0, 2.0, 0.0], [3.0, 1.0, 1.0]])
        batch = camera.project(pts)
        for i, p in enumerate(pts):
            np.testing.assert_allclose(batch[i], camera.project(p))

    def test_depth_positive_for_visible_points(self, camera):
        assert camera.depth_of(np.array([2.0, 2.0, 0.0])) > 0

    def test_is_visible_inside_and_outside(self, camera):
        assert camera.is_visible(np.array([2.0, 2.0, 0.0]))
        assert not camera.is_visible(np.array([-100.0, 50.0, 0.0]))


class TestGroundHomography:
    def test_matches_projection_for_ground_points(self, camera):
        for pt in [(1.0, 1.0), (3.0, 2.0), (0.5, 4.0)]:
            via_h = camera.project_ground(np.array(pt))
            direct = camera.project(np.array([pt[0], pt[1], 0.0]))
            np.testing.assert_allclose(via_h, direct, atol=1e-9)

    def test_backprojection_round_trip(self, camera):
        pt = np.array([2.5, 3.5])
        uv = camera.project_ground(pt)
        back = camera.backproject_to_ground(uv)
        np.testing.assert_allclose(back, pt, atol=1e-9)

    def test_normalised(self, camera):
        h = camera.ground_homography()
        assert h[2, 2] == pytest.approx(1.0)

    def test_projection_matrix_shape(self, camera):
        assert camera.projection_matrix.shape == (3, 4)

"""Tests for AdaBoost stumps and the channel-features detector."""

import numpy as np
import pytest

from repro.detection.boosting import AdaBoostStumps, DecisionStump
from repro.detection.channel_detector import (
    AGG_CELL,
    ChannelFeatureDetector,
    NUM_CHANNELS,
    WINDOW_DIM,
    aggregate_channels,
    compute_channels,
    window_descriptor,
)


class TestDecisionStump:
    def test_predict_polarity(self):
        stump = DecisionStump(dim=0, threshold=0.5, polarity=1, alpha=1.0)
        out = stump.predict(np.array([[0.0], [1.0]]))
        np.testing.assert_array_equal(out, [-1.0, 1.0])

    def test_negative_polarity_flips(self):
        stump = DecisionStump(dim=0, threshold=0.5, polarity=-1, alpha=1.0)
        out = stump.predict(np.array([[0.0], [1.0]]))
        np.testing.assert_array_equal(out, [1.0, -1.0])


class TestAdaBoost:
    def _separable(self, rng, n=100):
        pos = rng.normal(loc=[2.0, 0.0], scale=0.5, size=(n, 2))
        neg = rng.normal(loc=[-2.0, 0.0], scale=0.5, size=(n, 2))
        x = np.vstack([pos, neg])
        y = np.concatenate([np.ones(n), -np.ones(n)])
        return x, y

    def test_separable_data_classified(self, rng):
        x, y = self._separable(rng)
        clf = AdaBoostStumps(n_stumps=10).fit(x, y)
        accuracy = np.mean(clf.predict(x) == y)
        assert accuracy > 0.95

    def test_interval_needs_multiple_stumps(self, rng):
        """``y = +1 iff |x| < 0.5`` cannot be split by one threshold;
        boosting combines stumps on both sides."""
        x = rng.uniform(-1, 1, size=(400, 1))
        y = np.where(np.abs(x[:, 0]) < 0.5, 1.0, -1.0)
        single = AdaBoostStumps(n_stumps=1).fit(x, y)
        boosted = AdaBoostStumps(n_stumps=40).fit(x, y)
        single_acc = np.mean(single.predict(x) == y)
        boosted_acc = np.mean(boosted.predict(x) == y)
        assert boosted_acc > single_acc
        assert boosted_acc > 0.9

    def test_decision_function_margin_sign(self, rng):
        x, y = self._separable(rng)
        clf = AdaBoostStumps(n_stumps=8).fit(x, y)
        scores = clf.decision_function(x)
        assert np.mean(np.sign(scores) == y) > 0.95

    def test_score_tensor_matches_decision_function(self, rng):
        x, y = self._separable(rng, n=30)
        clf = AdaBoostStumps(n_stumps=8).fit(x, y)
        grid = x.reshape(6, 10, 2)
        np.testing.assert_allclose(
            clf.score_tensor(grid).reshape(-1),
            clf.decision_function(x),
        )

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            AdaBoostStumps(4).fit(rng.normal(size=(10, 2)), np.zeros(10))

    def test_rejects_single_class(self, rng):
        with pytest.raises(ValueError):
            AdaBoostStumps(4).fit(rng.normal(size=(10, 2)), np.ones(10))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostStumps(4).decision_function(np.zeros((2, 2)))


class TestChannels:
    def test_channel_count(self, rng):
        channels = compute_channels(rng.uniform(size=(32, 40)))
        assert channels.shape == (32, 40, NUM_CHANNELS)

    def test_intensity_channel_is_image(self, rng):
        img = rng.uniform(size=(16, 16))
        channels = compute_channels(img)
        np.testing.assert_allclose(channels[..., 0], img)

    def test_orientation_channels_partition_magnitude(self, rng):
        img = rng.uniform(size=(20, 20))
        channels = compute_channels(img)
        summed = channels[..., 2:].sum(axis=2)
        np.testing.assert_allclose(summed, channels[..., 1], atol=1e-9)

    def test_aggregation_shape(self, rng):
        channels = compute_channels(rng.uniform(size=(32, 48)))
        grid = aggregate_channels(channels)
        assert grid.shape == (32 // AGG_CELL, 48 // AGG_CELL, NUM_CHANNELS)

    def test_aggregation_sums(self):
        channels = np.ones((8, 8, NUM_CHANNELS))
        grid = aggregate_channels(channels)
        np.testing.assert_allclose(grid, AGG_CELL * AGG_CELL)

    def test_window_descriptor_dim(self, rng):
        desc = window_descriptor(rng.uniform(size=(40, 20)))
        assert desc.shape == (WINDOW_DIM,)


@pytest.fixture(scope="module")
def trained_acf(dataset1):
    rng = np.random.default_rng(5)
    train_obs = []
    for record in dataset1.frames(0, 500, only_ground_truth=True):
        for cam in dataset1.camera_ids[:2]:
            train_obs.append(record.observations[cam])
    return ChannelFeatureDetector.train(train_obs, rng)


class TestChannelFeatureDetector:
    def test_detects_people(self, trained_acf, dataset1):
        from repro.datasets.groundtruth import ground_truth_boxes
        from repro.detection.metrics import best_threshold

        rng = np.random.default_rng(6)
        frames = []
        for record in dataset1.frames(1000, 1400, only_ground_truth=True):
            obs = record.observation(dataset1.camera_ids[0])
            frames.append(
                (trained_acf.detect(obs, rng, threshold=-5.0),
                 ground_truth_boxes(obs))
            )
        _, counts = best_threshold(frames)
        assert counts.f_score > 0.3

    def test_faster_than_hog_window(self, trained_acf, dataset1):
        """The architectural speed advantage the paper's Tables II-III
        measure (0.1 s vs 1.5 s per frame) shows up here too."""
        import time

        from tests.test_window_detector import trained_detector  # noqa: F401

        rng = np.random.default_rng(7)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        start = time.perf_counter()
        for _ in range(3):
            trained_acf.detect(obs, rng, threshold=0.0)
        acf_time = time.perf_counter() - start
        # ACF scans in well under 100 ms/frame on the small canvas.
        assert acf_time / 3 < 0.3

    def test_requires_fitted_classifier(self):
        with pytest.raises(ValueError):
            ChannelFeatureDetector(AdaBoostStumps(4))

    def test_detections_sorted_and_labelled(self, trained_acf, dataset1):
        rng = np.random.default_rng(8)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        detections = trained_acf.detect(obs, rng, threshold=0.0)
        scores = [d.score for d in detections]
        assert scores == sorted(scores, reverse=True)
        person_ids = {v.person_id for v in obs.objects}
        for det in detections:
            if det.truth_id is not None:
                assert det.truth_id in person_ids

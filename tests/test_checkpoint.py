"""Crash-safe checkpoint/resume: store, codec, hooks, and the
kill-and-resume golden equivalence.

The tentpole guarantee under test: a deployment killed at a checkpoint
and resumed in a fresh engine finishes **bit-identically** to one that
was never interrupted — pinned against the same ``tests/goldens/``
fixtures the engine-refactor regression uses, for all four
coordination policies and both chaos configurations.
"""

import json
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointInterrupted,
    CheckpointStore,
    RunCheckpointer,
    SimulatedCrash,
)
from repro.checkpoint.codec import (
    decision_from_dict,
    decision_to_dict,
    restore_rng_state,
    rng_state_to_dict,
)
from repro.core.accuracy import DesiredAccuracy, GlobalAccuracy
from repro.core.controller import SelectionDecision
from repro.ioutils import atomic_write_json
from tests.golden_utils import (
    GOLDEN_CHAOS_CONFIGS,
    chaos_result_fingerprint,
    golden_run_configs,
    load_golden,
    make_golden_runner,
    run_result_fingerprint,
)


def normalize(fingerprint):
    return json.loads(json.dumps(fingerprint))


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    FP = {"policy": "full", "seed": 7, "window": [1000, 1300]}

    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("run", self.FP, {"next_round": 2, "x": 0.1 + 0.2})
        assert store.load("run", self.FP) == {
            "next_round": 2,
            "x": 0.1 + 0.2,  # doubles survive JSON exactly
        }

    def test_missing_checkpoint_is_fresh_start(self, tmp_path):
        assert CheckpointStore(tmp_path).load("run", self.FP) is None

    def test_fingerprint_mismatch_names_fields(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", self.FP, {"next_round": 1})
        other = dict(self.FP, seed=8, policy="subset")
        with pytest.raises(CheckpointError, match="policy, seed"):
            store.load("run", other)

    def test_kind_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", self.FP, {"next_round": 1})
        with pytest.raises(CheckpointError, match="kind"):
            store.load("chaos", self.FP)

    def test_wrong_schema_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path.write_text(json.dumps({"schema": "repro.checkpoint.v0"}))
        with pytest.raises(CheckpointError, match="schema"):
            store.load("run", self.FP)

    def test_corrupt_json_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.directory.mkdir(exist_ok=True)
        store.path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load("run", self.FP)

    def test_tuple_fingerprint_matches_disk_form(self, tmp_path):
        """In-memory tuples must compare equal to their JSON arrays."""
        store = CheckpointStore(tmp_path)
        store.save("run", {"entropy": (1, 2, 3)}, {"next_round": 1})
        assert store.load("run", {"entropy": [1, 2, 3]}) is not None


# ----------------------------------------------------------------------
# Atomic writes (satellite bugfix)
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_interrupted_write_preserves_previous_file(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write must leave the old contents, not a torn
        file — the property the non-atomic ``save_library`` lacked."""
        path = tmp_path / "out.json"
        atomic_write_json(path, {"generation": 1})

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_json(path, {"generation": 2})
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"generation": 1}
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert not leftovers, f"temp files leaked: {leftovers}"

    def test_save_library_is_atomic(self, tmp_path, monkeypatch):
        from repro.persistence import load_library, save_library
        from tests.test_persistence_cli import sample_library

        path = tmp_path / "library.json"
        save_library(sample_library(), path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_library(sample_library(), path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert set(load_library(path).names) == {"T1", "T2"}

    def test_checkpoint_save_is_atomic(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        store.save("run", {"seed": 1}, {"next_round": 3})

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.save("run", {"seed": 1}, {"next_round": 4})
        monkeypatch.undo()
        assert store.load("run", {"seed": 1}) == {"next_round": 3}


# ----------------------------------------------------------------------
# Codec round-trips (property-based)
# ----------------------------------------------------------------------
class TestRngStateRoundTrip:
    @given(seed=st.integers(0, 2**63 - 1), warmup=st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_generator_resumes_bit_identically(self, seed, warmup):
        original = np.random.default_rng(seed)
        original.random(warmup)
        # Through the same JSON round-trip the checkpoint file takes.
        payload = json.loads(json.dumps(rng_state_to_dict(original)))
        restored = np.random.default_rng(0)
        restore_rng_state(restored, payload)
        assert restored.random(16).tolist() == original.random(16).tolist()
        assert (
            restored.integers(0, 2**31, 8).tolist()
            == original.integers(0, 2**31, 8).tolist()
        )

    def test_mt19937_state_with_ndarray_survives(self):
        """Bit generators whose state holds arrays (MT19937's key)
        need the ``__ndarray__`` encoding."""
        original = np.random.Generator(np.random.MT19937(42))
        original.random(3)
        payload = json.loads(json.dumps(rng_state_to_dict(original)))
        restored = np.random.Generator(np.random.MT19937(0))
        restore_rng_state(restored, payload)
        assert restored.random(8).tolist() == original.random(8).tolist()


finite = st.floats(allow_nan=False, allow_infinity=False)
#: GlobalAccuracy/DesiredAccuracy validate their fields: object counts
#: are non-negative, probabilities live in [0, 1].
objects = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
accuracy = st.tuples(objects, probability)


class TestDecisionRoundTrip:
    @given(
        num_active=st.integers(1, 4),
        baseline=accuracy,
        desired=accuracy,
        achieved=accuracy,
    )
    @settings(max_examples=50, deadline=None)
    def test_decision_survives_json(
        self, num_active, baseline, desired, achieved
    ):
        cameras = [f"cam{i}" for i in range(num_active)]
        decision = SelectionDecision(
            assignment={c: "HOG" for c in cameras},
            baseline=GlobalAccuracy(*baseline),
            desired=DesiredAccuracy(*desired),
            achieved=GlobalAccuracy(*achieved),
            ranked_camera_ids=list(reversed(cameras)),
        )
        payload = json.loads(json.dumps(decision_to_dict(decision)))
        restored = decision_from_dict(payload)
        assert decision_to_dict(restored) == decision_to_dict(decision)


class TestLibraryFeatureRoundTrip:
    """Satellite bugfix: a ``(0, D)`` feature stack used to come back
    as ``(0, 0)``."""

    @given(
        rows=st.integers(0, 4),
        cols=st.integers(1, 5),
        fill=finite,
    )
    @settings(max_examples=50, deadline=None)
    def test_any_shape_round_trips(self, rows, cols, fill):
        from repro.core.calibration import (
            TrainingItem,
            TrainingLibrary,
        )
        from repro.persistence import library_from_dict, library_to_dict
        from tests.test_core_calibration import make_profile

        library = TrainingLibrary()
        library.add(
            TrainingItem(
                name="T1",
                profiles={"HOG": make_profile("HOG")},
                features=np.full((rows, cols), fill),
            )
        )
        restored = library_from_dict(
            json.loads(json.dumps(library_to_dict(library)))
        )
        features = restored.get("T1").features
        assert features.shape == (rows, cols)
        assert features.tolist() == np.full((rows, cols), fill).tolist()

    def test_legacy_document_without_shape_still_loads(self):
        from repro.persistence import library_from_dict, library_to_dict
        from tests.test_persistence_cli import sample_library

        data = library_to_dict(sample_library())
        for item in data["items"].values():
            del item["features_shape"]  # pre-shape-field document
        restored = library_from_dict(data)
        assert restored.get("T1").features.shape == (2, 3)

    def test_malformed_calibrator_raises_descriptive_error(self):
        from repro.persistence import library_from_dict, library_to_dict
        from tests.test_persistence_cli import sample_library

        data = library_to_dict(sample_library())
        doc = data["items"]["T1"]["profiles"]["HOG"]
        del doc["calibrator"]["weight"]  # fitted but incomplete
        with pytest.raises(ValueError, match="malformed calibrator"):
            library_from_dict(data)

    def test_calibrator_restore_round_trips_probabilities(self):
        from repro.detection.scores import ScoreCalibrator

        fitted = ScoreCalibrator()
        fitted.fit(
            np.array([2.0, 1.5, -1.0, -1.5]), np.array([1, 1, 0, 0])
        )
        clone = ScoreCalibrator().restore(fitted.weight, fitted.bias)
        assert clone.is_fitted
        scores = np.linspace(-3, 3, 7)
        assert (
            clone.predict_proba(scores).tolist()
            == fitted.predict_proba(scores).tolist()
        )


# ----------------------------------------------------------------------
# Hooks: cadence, crash injection, SIGTERM
# ----------------------------------------------------------------------
class TestRunCheckpointer:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointConfig(directory=tmp_path, every=0)
        with pytest.raises(ValueError, match="crash_after"):
            CheckpointConfig(directory=tmp_path, crash_after=-1)

    def test_cadence_skips_off_beat_and_final_units(self, tmp_path):
        ck = RunCheckpointer(CheckpointConfig(directory=tmp_path, every=2))
        ck.begin("run", {"seed": 1})
        saved = []
        for position in range(5):
            ck.unit_complete(
                position, 5, lambda p=position: saved.append(p) or {"at": p}
            )
        ck.finish()
        # completed counts 2 and 4 are due; 5 == total is the finished
        # run, which needs no checkpoint.
        assert saved == [1, 3]

    def test_crash_after_writes_then_raises(self, tmp_path):
        ck = RunCheckpointer(
            CheckpointConfig(directory=tmp_path, crash_after=2)
        )
        ck.begin("run", {"seed": 1})
        for position in range(2):
            ck.unit_complete(position, 9, lambda: {"pos": position})
        with pytest.raises(SimulatedCrash) as info:
            ck.unit_complete(2, 9, lambda: {"pos": 2})
        ck.finish()
        assert info.value.position == 2
        assert ck.store.load("run", {"seed": 1}) == {"pos": 2}

    def test_sigterm_checkpoints_at_next_boundary(self, tmp_path):
        ck = RunCheckpointer(
            CheckpointConfig(directory=tmp_path, every=100)
        )
        previous = signal.getsignal(signal.SIGTERM)
        ck.begin("run", {"seed": 1})
        try:
            ck.unit_complete(0, 10, lambda: {"pos": 0})
            signal.raise_signal(signal.SIGTERM)  # orchestrator shutdown
            with pytest.raises(CheckpointInterrupted) as info:
                ck.unit_complete(1, 10, lambda: {"pos": 1})
        finally:
            ck.finish()
        assert info.value.position == 1
        assert ck.store.load("run", {"seed": 1}) == {"pos": 1}
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_resume_with_empty_directory_starts_fresh(self, tmp_path):
        ck = RunCheckpointer(
            CheckpointConfig(directory=tmp_path, resume=True)
        )
        assert ck.begin("run", {"seed": 1}) is None
        ck.finish()


# ----------------------------------------------------------------------
# Kill-and-resume golden equivalence (the tentpole guarantee)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def crashed_runner():
    """The engine that dies — same construction as the goldens."""
    return make_golden_runner()


@pytest.fixture(scope="module")
def fresh_runner():
    """A separate engine standing in for the restarted process."""
    return make_golden_runner()


@pytest.fixture(scope="module")
def run_goldens():
    return load_golden("run_results")


@pytest.fixture(scope="module")
def chaos_goldens():
    return load_golden("chaos_results")


def engine_run(runner, config, checkpointer):
    kwargs = dict(config)
    mode = kwargs.pop("mode")
    return runner.engine.run(mode, checkpointer=checkpointer, **kwargs)


class TestRunKillAndResume:
    @pytest.mark.parametrize(
        "name", ["all_best", "subset", "full", "fixed"]
    )
    def test_resumed_run_matches_golden(
        self, crashed_runner, fresh_runner, run_goldens, tmp_path, name
    ):
        """Crash after the checkpoint, resume in a fresh engine, and
        the completed result is bit-identical to the uninterrupted
        golden — every RunResult field, floats by exact equality."""
        configs = golden_run_configs(crashed_runner.dataset.camera_ids)
        with pytest.raises(SimulatedCrash):
            engine_run(
                crashed_runner,
                configs[name],
                RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=0)
                ),
            )
        resumed = engine_run(
            fresh_runner,
            configs[name],
            RunCheckpointer(
                CheckpointConfig(directory=tmp_path, resume=True)
            ),
        )
        assert normalize(run_result_fingerprint(resumed)) == (
            run_goldens[name]
        ), f"resumed {name!r} run drifted from the golden"

    def test_mismatched_config_refuses_resume(
        self, fresh_runner, tmp_path
    ):
        configs = golden_run_configs(fresh_runner.dataset.camera_ids)
        with pytest.raises(SimulatedCrash):
            engine_run(
                fresh_runner,
                configs["full"],
                RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=0)
                ),
            )
        with pytest.raises(CheckpointError, match="different run"):
            engine_run(
                fresh_runner,
                configs["all_best"],
                RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, resume=True)
                ),
            )


class TestMultiRoundResume:
    """Mid-run resume with partial accumulators: a smaller
    re-calibration interval gives the golden window three rounds, so
    the checkpoint is taken with genuinely in-flight state."""

    @pytest.fixture(scope="class")
    def config(self):
        from repro.core.config import EECSConfig

        return EECSConfig(recalibration_interval=100)

    @pytest.fixture(scope="class")
    def spec_kwargs(self):
        return dict(
            dataset_number=1,
            policy="full",
            start=1000,
            end=1300,
            seed=11,
        )

    @pytest.fixture(scope="class")
    def reference(self, config, spec_kwargs):
        from repro.engine.spec import DeploymentSpec

        result = DeploymentSpec(**spec_kwargs).execute(config=config)
        assert len(result.decisions) == 3, "window should span 3 rounds"
        return normalize(run_result_fingerprint(result))

    def test_resume_after_second_round(
        self, config, spec_kwargs, reference, tmp_path
    ):
        from repro.engine.spec import DeploymentSpec

        with pytest.raises(SimulatedCrash) as info:
            DeploymentSpec(**spec_kwargs).execute(
                config=config,
                checkpointer=RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=1)
                ),
            )
        assert info.value.position == 1
        # Resume with a different executor width: workers is not part
        # of the fingerprint because any backend is bit-identical.
        resumed = DeploymentSpec(
            **spec_kwargs,
            workers=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
        ).execute(config=config)
        assert normalize(run_result_fingerprint(resumed)) == reference


class TestChaosKillAndResume:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CHAOS_CONFIGS))
    def test_replay_resume_matches_golden(
        self, crashed_runner, fresh_runner, chaos_goldens, tmp_path, name
    ):
        """Kill the event-driven run mid-flight; the resumed
        (seeded-replay) run must match the uninterrupted golden and
        pass the recorded-prefix verification."""
        from repro.experiments.faults import ChaosSpec, run_chaos

        spec = ChaosSpec(**GOLDEN_CHAOS_CONFIGS[name])
        with pytest.raises(SimulatedCrash):
            run_chaos(
                spec,
                crashed_runner,
                checkpoint=CheckpointConfig(
                    directory=tmp_path, every=2, crash_after=5
                ),
            )
        resumed = run_chaos(
            spec,
            fresh_runner,
            checkpoint=CheckpointConfig(directory=tmp_path, resume=True),
        )
        assert normalize(chaos_result_fingerprint(resumed)) == (
            chaos_goldens[name]
        ), f"resumed chaos run {name!r} drifted from the golden"

    def test_divergent_replay_is_rejected(
        self, fresh_runner, tmp_path
    ):
        """Tampering with the recorded fault log must fail the
        replay-prefix verification instead of resuming silently."""
        from repro.experiments.faults import ChaosSpec, run_chaos

        spec = ChaosSpec(**GOLDEN_CHAOS_CONFIGS["faulty"])
        with pytest.raises(SimulatedCrash):
            run_chaos(
                spec,
                fresh_runner,
                checkpoint=CheckpointConfig(
                    directory=tmp_path, crash_after=8
                ),
            )
        store = CheckpointStore(tmp_path)
        document = json.loads(store.path.read_text())
        assert document["state"]["fault_events"], (
            "the faulty golden should have faults before the crash"
        )
        document["state"]["fault_events"][0]["time_s"] += 1.0
        store.path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="diverges"):
            run_chaos(
                spec,
                fresh_runner,
                checkpoint=CheckpointConfig(
                    directory=tmp_path, resume=True
                ),
            )

"""Kill-and-resume stream stitching through the CLI.

A ``--stream-out`` file must come out of any number of crash/resume
cycles as one coherent stream — monotone round indices, no duplicates,
no gaps — indistinguishable in shape from an uninterrupted run's, and
the simulation results must stay byte-identical to a clean run.
"""

import json

from repro.cli import main
from repro.telemetry import (
    JsonlStreamSink,
    check_stream_contiguous,
    read_stream_records,
)
from repro.telemetry.live import build_stream_record
from repro.telemetry.schema import validate_stream_file


def _comparable_metrics(record):
    """The final cumulative snapshot minus wall-clock instruments.

    ``detection_execute_seconds_total`` measures host wall time, the
    one quantity that legitimately differs between a clean run and a
    crash-plus-resume of the same deployment.
    """
    return [
        entry
        for entry in record["metrics"]["metrics"]
        if not entry["name"].endswith("_seconds_total")
    ]


class TestRunStreamStitching:
    BASE = [
        "run", "--dataset", "1", "--mode", "full", "--seed", "7",
        "--start", "1000", "--end", "1300",
        "--recalibration-interval", "100",
    ]

    def test_crash_resume_stream_is_gap_free(self, capsys, tmp_path):
        clean_result = tmp_path / "clean.json"
        clean_stream = tmp_path / "clean.jsonl"
        stitched_result = tmp_path / "stitched.json"
        stitched_stream = tmp_path / "stitched.jsonl"
        ckpt = tmp_path / "ckpt"

        assert main(self.BASE + [
            "--result-out", str(clean_result),
            "--stream-out", str(clean_stream),
        ]) == 0

        assert main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--crash-after", "1",
            "--stream-out", str(stitched_stream),
        ]) == 3
        assert "interrupted" in capsys.readouterr().out
        # the killed process flushed the rounds it completed
        assert read_stream_records(stitched_stream)

        assert main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--resume",
            "--result-out", str(stitched_result),
            "--stream-out", str(stitched_stream),
        ]) == 0

        assert clean_result.read_bytes() == stitched_result.read_bytes()
        clean = read_stream_records(clean_stream)
        stitched = read_stream_records(stitched_stream)
        check_stream_contiguous(clean)
        check_stream_contiguous(stitched)
        assert validate_stream_file(stitched_stream) == len(stitched)
        assert len(stitched) == len(clean)
        # everything deterministic in the final snapshot matches
        assert _comparable_metrics(stitched[-1]) == _comparable_metrics(
            clean[-1]
        )

    def test_fresh_run_replaces_previous_stream(self, capsys, tmp_path):
        stream = tmp_path / "s.jsonl"
        stream.write_text(
            json.dumps({"schema": "repro.stream.v1", "seq": 99,
                        "round": 99}) + "\n"
        )
        assert main(self.BASE + ["--stream-out", str(stream)]) == 0
        records = read_stream_records(stream)
        check_stream_contiguous(records)
        assert all(r["round"] != 99 for r in records)


def _fixed_record(seq, round_index):
    """A record whose serialized length is the same for every seq < 10,
    so rotation boundaries can be pinned to exact byte offsets."""
    return build_stream_record(
        run_id="rot",
        seq=seq,
        round_index=round_index,
        time_s=0.0,
        metrics={"schema": "repro.metrics.v1", "metrics": []},
        events=[],
        alerts=[],
    )


class TestRotationBoundaryStitching:
    """A kill that tears the live file *at* the rotation boundary must
    still stitch into one coherent stream on resume."""

    def test_torn_line_at_exact_rotation_boundary(self, tmp_path):
        path = tmp_path / "s.jsonl"
        line_len = len(
            json.dumps(_fixed_record(0, 0), sort_keys=True) + "\n"
        )
        rotate = 4 * line_len

        sink = JsonlStreamSink(path, rotate_bytes=rotate)
        for i in range(4):
            sink.emit(_fixed_record(i, i))
        sink.close()
        # A record that exactly fills the file does not rotate: the
        # live file sits at precisely rotate_bytes, the worst case.
        assert path.stat().st_size == rotate
        assert not (tmp_path / "s.jsonl.1").exists()

        # OS-crash torn write of record 4, straddling the boundary.
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"schema": "repro.stream.v1", "seq": 4, "rou')

        resumed = JsonlStreamSink(path, rotate_bytes=rotate, resume=True)
        resumed.on_resume(4)
        # The torn tail is gone; the stitched file is back at the
        # boundary, so the very next emit must rotate.
        assert path.stat().st_size == rotate
        for i in range(4, 7):
            resumed.emit(_fixed_record(i, i))
        resumed.close()

        assert (tmp_path / "s.jsonl.1").exists()
        records = read_stream_records(path)
        check_stream_contiguous(records)
        assert [r["round"] for r in records] == list(range(7))

    def test_crash_resume_with_rotation_active(self, capsys, tmp_path):
        base = [
            "run", "--dataset", "1", "--mode", "full", "--seed", "7",
            "--start", "1000", "--end", "1300",
            "--recalibration-interval", "100",
        ]
        clean_stream = tmp_path / "clean.jsonl"
        stitched_stream = tmp_path / "stitched.jsonl"
        ckpt = tmp_path / "ckpt"

        assert main(base + ["--stream-out", str(clean_stream)]) == 0

        # Rotate on effectively every flush (each cumulative snapshot
        # record is far bigger than 1 KiB), so the crash always lands
        # with a rotation chain on disk.
        rotated = ["--stream-rotate-bytes", "1024"]
        assert main(base + rotated + [
            "--checkpoint-dir", str(ckpt), "--crash-after", "1",
            "--stream-out", str(stitched_stream),
        ]) == 3
        assert "interrupted" in capsys.readouterr().out
        assert (tmp_path / "stitched.jsonl.1").exists()

        assert main(base + rotated + [
            "--checkpoint-dir", str(ckpt), "--resume",
            "--stream-out", str(stitched_stream),
        ]) == 0

        clean = read_stream_records(clean_stream)
        stitched = read_stream_records(stitched_stream)
        check_stream_contiguous(stitched)
        assert validate_stream_file(stitched_stream) == len(stitched)
        assert len(stitched) == len(clean)
        assert _comparable_metrics(stitched[-1]) == _comparable_metrics(
            clean[-1]
        )


class TestChaosStreamStitching:
    BASE = [
        "chaos", "--dataset", "1", "--seed", "7", "--frames", "10",
        "--loss-rate", "0.2", "--crash", "1", "--resilience",
    ]

    def test_crash_resume_stream_is_gap_free(self, capsys, tmp_path):
        clean_result = tmp_path / "clean.json"
        clean_stream = tmp_path / "clean.jsonl"
        stitched_result = tmp_path / "stitched.json"
        stitched_stream = tmp_path / "stitched.jsonl"
        ckpt = tmp_path / "ckpt"

        assert main(self.BASE + [
            "--result-out", str(clean_result),
            "--stream-out", str(clean_stream),
        ]) == 0

        assert main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--crash-after", "4",
            "--stream-out", str(stitched_stream),
        ]) == 3
        assert "interrupted" in capsys.readouterr().out

        assert main(self.BASE + [
            "--checkpoint-dir", str(ckpt), "--resume",
            "--result-out", str(stitched_result),
            "--stream-out", str(stitched_stream),
        ]) == 0

        assert clean_result.read_bytes() == stitched_result.read_bytes()
        clean = read_stream_records(clean_stream)
        stitched = read_stream_records(stitched_stream)
        check_stream_contiguous(clean)
        check_stream_contiguous(stitched)
        assert validate_stream_file(stitched_stream) == len(stitched)
        assert len(stitched) == len(clean)
        assert _comparable_metrics(stitched[-1]) == _comparable_metrics(
            clean[-1]
        )
        # the resilience mirror rides along in the stream
        names = {m["name"] for m in stitched[-1]["metrics"]["metrics"]}
        assert "camera_health" in names

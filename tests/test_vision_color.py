"""Tests for colour features."""

import numpy as np
import pytest

from repro.vision.color import (
    COLOR_FEATURE_DIM,
    mean_color_feature,
    synthetic_color_feature,
)


class TestMeanColorFeature:
    def test_dimension_is_papers_40(self, rng):
        img = rng.uniform(size=(60, 80))
        feat = mean_color_feature(img, (10, 10, 20, 40))
        assert feat.shape == (COLOR_FEATURE_DIM,)
        assert COLOR_FEATURE_DIM == 40

    def test_constant_patch(self):
        img = np.full((50, 50), 0.6)
        feat = mean_color_feature(img, (5, 5, 20, 30))
        np.testing.assert_allclose(feat, 0.6, atol=1e-9)

    def test_empty_crop_returns_zeros(self, rng):
        img = rng.uniform(size=(20, 20))
        feat = mean_color_feature(img, (100, 100, 5, 5))
        np.testing.assert_allclose(feat, 0.0)

    def test_distinguishes_shades(self):
        dark = np.full((40, 40), 0.2)
        light = np.full((40, 40), 0.8)
        bbox = (5, 5, 15, 25)
        f_dark = mean_color_feature(dark, bbox)
        f_light = mean_color_feature(light, bbox)
        assert np.linalg.norm(f_light - f_dark) > 1.0

    def test_size_invariance(self):
        """Same content at different crop sizes yields similar features."""
        img = np.zeros((100, 100))
        img[:50] = 0.8  # top half light, bottom half dark
        small = mean_color_feature(img, (10, 25, 10, 50))
        large = mean_color_feature(img, (10, 0, 40, 100))
        assert np.linalg.norm(small - large) < 1.0


class TestSyntheticColorFeature:
    def test_matches_shade(self, rng):
        feat = synthetic_color_feature(0.4, rng, noise=0.0)
        # Body blocks carry the shade; head row is brighter.
        assert feat[5:].mean() == pytest.approx(0.4, abs=1e-9)
        assert feat[:5].mean() == pytest.approx(0.65, abs=1e-9)

    def test_same_person_features_close(self, rng):
        a = synthetic_color_feature(0.3, rng)
        b = synthetic_color_feature(0.3, rng)
        c = synthetic_color_feature(0.8, rng)
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)

    def test_in_unit_range(self, rng):
        feat = synthetic_color_feature(0.95, rng, noise=0.2)
        assert feat.min() >= 0.0
        assert feat.max() <= 1.0

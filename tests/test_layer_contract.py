"""Layer contract: the engine never imports upward.

``repro.engine`` is the simulation core; ``repro.experiments`` and
``repro.cli`` are orchestration layers *above* it.  An import in the
other direction couples the core to experiment plumbing and recreates
the circular-dependency swamp the engine refactor removed, so CI
enforces the contract here (the environment has no import-linter
package; this AST-based check is the equivalent, wired into the same
``tests`` job).

The checker walks every module in the constrained packages and
resolves ``import x`` / ``from x import y`` / relative imports to
absolute module paths — string matching on source would miss aliased
and relative forms.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"

#: package -> packages it must never import (even under TYPE_CHECKING:
#: a type-only upward dependency is still an upward dependency).
CONTRACTS = {
    "repro.engine": ("repro.experiments", "repro.cli"),
    # The layers below the engine must not reach up into it either.
    "repro.datasets": ("repro.engine", "repro.experiments", "repro.cli"),
    "repro.detection": ("repro.engine", "repro.experiments", "repro.cli"),
    "repro.energy": ("repro.engine", "repro.experiments", "repro.cli"),
    "repro.network": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.fleet",
    ),
    # Fleet mechanisms (cells, coordinator, peer protocol, tiled
    # worlds) sit below the engine: the engine and its policies import
    # repro.fleet, never the reverse.  The fleet may use the network
    # and checkpoint codecs, but not the orchestration layers.
    "repro.fleet": ("repro.engine", "repro.experiments", "repro.cli"),
    # The resilience layer sits between the fault model and the
    # engine: it may read repro.faults / repro.telemetry / repro.core,
    # and the engine may import it — never the reverse.  It also never
    # touches the network directly (the owning node applies its
    # decisions), so a network dependency is forbidden too.
    "repro.resilience": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.network",
    ),
    "repro.faults": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.resilience",
    ),
    "repro.telemetry": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.resilience",
    ),
    # Offline analysis reads telemetry artifacts; it must run where
    # the artifacts land, without dragging in the simulation core.
    "repro.obs": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.network",
        "repro.resilience",
    ),
    "repro.perf": ("repro.engine", "repro.experiments", "repro.cli"),
    # The predictive wake-up layer (regressors, wake config, activity
    # features) sits between the core math and the engine: the
    # predictive *policy* lives in repro.engine and imports it, never
    # the reverse.  It also reads nothing from the network or the
    # resilience ladder — it learns purely from assessment telemetry.
    "repro.predictive": (
        "repro.engine",
        "repro.experiments",
        "repro.cli",
        "repro.network",
        "repro.resilience",
    ),
    # Checkpointing encodes values and stores documents; the engine
    # decides what its state is.  The engine imports checkpoint, never
    # the other way around.
    "repro.checkpoint": ("repro.engine", "repro.experiments", "repro.cli"),
}


def module_name(path: Path) -> str:
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def imported_modules(path: Path) -> set[str]:
    """Absolute module names imported by a source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    package_parts = module_name(path).split(".")
    if path.name != "__init__.py":
        package_parts = package_parts[:-1]
    imports: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imports.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against the package
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if prefix:
                imports.add(prefix)
            imports.update(
                f"{prefix}.{alias.name}" if prefix else alias.name
                for alias in node.names
            )
    return imports


def violations(package: str, forbidden: tuple[str, ...]) -> list[str]:
    found = []
    package_dir = SRC / Path(*package.split("."))
    for path in sorted(package_dir.rglob("*.py")):
        for imported in sorted(imported_modules(path)):
            for banned in forbidden:
                if imported == banned or imported.startswith(banned + "."):
                    found.append(
                        f"{module_name(path)} imports {imported} "
                        f"(forbidden: {banned})"
                    )
    return found


@pytest.mark.parametrize("package", sorted(CONTRACTS))
def test_no_upward_imports(package):
    forbidden = CONTRACTS[package]
    assert not violations(package, forbidden), (
        f"{package} must not import from {forbidden}:\n"
        + "\n".join(violations(package, forbidden))
    )


class TestCheckerCatchesViolations:
    """The contract only means something if the checker can fail."""

    def test_plain_import_detected(self, tmp_path):
        bad = SRC / "repro" / "engine" / "_contract_canary.py"
        bad.write_text("import repro.experiments.harness\n")
        try:
            assert violations("repro.engine", ("repro.experiments",))
        finally:
            bad.unlink()

    def test_from_import_detected(self, tmp_path):
        bad = SRC / "repro" / "engine" / "_contract_canary.py"
        bad.write_text("from repro.experiments import harness\n")
        try:
            assert violations("repro.engine", ("repro.experiments",))
        finally:
            bad.unlink()

    def test_relative_import_resolved(self):
        """Relative imports resolve to absolute names before matching."""
        bad = SRC / "repro" / "experiments" / "_contract_canary.py"
        bad.write_text("from . import harness\n")
        try:
            resolved = imported_modules(bad)
            assert "repro.experiments.harness" in resolved
        finally:
            bad.unlink()

"""Tests for k-means clustering and the bag-of-words representation."""

import numpy as np
import pytest

from repro.vision.bow import BagOfWords
from repro.vision.keypoints import DESCRIPTOR_DIM
from repro.vision.kmeans import KMeans


def three_clusters(rng, n=60):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    data = np.vstack(
        [c + rng.normal(scale=0.3, size=(n, 2)) for c in centers]
    )
    return data, centers


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        data, centers = three_clusters(rng)
        km = KMeans(3, rng=rng).fit(data)
        recovered = km.centroids
        for c in centers:
            dists = np.linalg.norm(recovered - c, axis=1)
            assert dists.min() < 0.5

    def test_predict_assigns_nearest(self, rng):
        data, _ = three_clusters(rng)
        km = KMeans(3, rng=rng).fit(data)
        labels = km.predict(data)
        assert set(labels) == {0, 1, 2}
        # Points from the same generated blob get the same label.
        assert len(set(labels[:60])) == 1

    def test_inertia_decreases_with_more_clusters(self, rng):
        data, _ = three_clusters(rng)
        inertia1 = KMeans(1, rng=rng).fit(data).inertia(data)
        inertia3 = KMeans(3, rng=rng).fit(data).inertia(data)
        assert inertia3 < inertia1

    def test_degenerate_fewer_points_than_k(self, rng):
        data = rng.uniform(size=(3, 4))
        km = KMeans(10, rng=rng).fit(data)
        assert km.centroids.shape == (10, 4)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_rejects_empty_data(self, rng):
        with pytest.raises(ValueError):
            KMeans(2, rng=rng).fit(np.zeros((0, 3)))

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            KMeans(2, rng=rng).predict(np.zeros((1, 2)))

    def test_deterministic_given_rng_seed(self):
        data, _ = three_clusters(np.random.default_rng(0))
        a = KMeans(3, rng=np.random.default_rng(1)).fit(data)
        b = KMeans(3, rng=np.random.default_rng(1)).fit(data)
        np.testing.assert_allclose(a.centroids, b.centroids)


class TestBagOfWords:
    @pytest.fixture()
    def fitted(self, rng):
        descs = rng.normal(size=(500, DESCRIPTOR_DIM))
        return BagOfWords(vocabulary_size=20, rng=rng).fit(descs)

    def test_histogram_normalised(self, fitted, rng):
        descs = rng.normal(size=(40, DESCRIPTOR_DIM))
        hist = fitted.histogram(descs)
        assert hist.shape == (20,)
        assert hist.sum() == pytest.approx(1.0)

    def test_histogram_empty_descriptors(self, fitted):
        hist = fitted.histogram(np.zeros((0, DESCRIPTOR_DIM)))
        np.testing.assert_allclose(hist, 0.0)

    def test_rejects_wrong_descriptor_dim(self, rng):
        with pytest.raises(ValueError):
            BagOfWords(vocabulary_size=5, rng=rng).fit(rng.normal(size=(10, 32)))

    def test_rejects_empty_fit(self, rng):
        with pytest.raises(ValueError):
            BagOfWords(vocabulary_size=5, rng=rng).fit(
                np.zeros((0, DESCRIPTOR_DIM))
            )

    def test_histogram_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BagOfWords().histogram(np.zeros((2, DESCRIPTOR_DIM)))

    def test_transform_image(self, fitted, rng):
        img = rng.uniform(size=(64, 64))
        hist = fitted.transform_image(img)
        assert hist.shape == (20,)
        assert hist.sum() == pytest.approx(1.0, abs=1e-9) or hist.sum() == 0.0

    def test_vocabulary_shape(self, fitted):
        assert fitted.vocabulary.shape == (20, DESCRIPTOR_DIM)

    def test_default_vocabulary_size_is_papers(self):
        assert BagOfWords().vocabulary_size == 400

"""Equivalence oracles for the batched/vectorised fast paths.

Each optimised path in the detection pipeline keeps its original
one-at-a-time implementation as a pinned reference
(``detect_reference``, ``describe_keypoint``, ``group_reference``);
these tests assert the fast paths reproduce the references — bitwise
where the refactor preserves the arithmetic, structurally where only
the gating norm differs by design.  The executor tests then assert the
property the whole PR rests on: every backend (serial, process pool,
shared memory) produces bit-identical deployment results.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.checkpoint import CheckpointConfig, RunCheckpointer, SimulatedCrash
from repro.detection.base import BoundingBox, Detection
from repro.engine.core import DeploymentEngine
from repro.engine.executor import (
    SerialDetectionExecutor,
    SharedFrameStore,
    SharedMemoryDetectionExecutor,
    make_executor,
)


def _shm_entries() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def _detection_signature(detections: list[Detection]):
    return [
        (d.bbox, d.score, d.camera_id, d.frame_index, d.algorithm,
         tuple(d.color_feature), d.truth_id)
        for d in detections
    ]


class TestDetectorBatchEquivalence:
    def test_detect_matches_reference(self, runner1):
        """The vectorised scoring path is the pinned model, bit for bit."""
        engine = runner1.engine
        records = engine.dataset.frames(1000, 1200, only_ground_truth=True)
        checked = 0
        for record in records[:6]:
            for camera_id in engine.dataset.camera_ids:
                observation = record.observation(camera_id)
                for name, detector in engine.detectors.items():
                    entropy = [2017, record.frame_index, checked]
                    fast = detector.detect(
                        observation, np.random.default_rng(entropy)
                    )
                    reference = detector.detect_reference(
                        observation, np.random.default_rng(entropy)
                    )
                    assert _detection_signature(fast) == (
                        _detection_signature(reference)
                    ), f"{name} drifted from detect_reference"
                    checked += 1
        assert checked > 0

    def test_detect_batch_matches_sequential_detect(self, runner1):
        """Grouping tasks by algorithm changes nothing per task."""
        from repro.detection.batch import DetectionTask, run_batch

        engine = runner1.engine
        records = engine.dataset.frames(1000, 1100, only_ground_truth=True)
        tasks = []
        for index, record in enumerate(records[:3]):
            for camera_id in engine.dataset.camera_ids:
                for name in sorted(engine.detectors):
                    tasks.append(
                        DetectionTask(
                            algorithm=name,
                            observation=record.observation(camera_id),
                            entropy=(2017, record.frame_index, index),
                            threshold=None,
                        )
                    )
        batched = run_batch(engine.detectors, tasks)
        sequential = [
            engine.detectors[t.algorithm].detect(
                t.observation, t.make_rng(), threshold=t.threshold
            )
            for t in tasks
        ]
        assert [
            _detection_signature(dets) for dets in batched
        ] == [_detection_signature(dets) for dets in sequential]


class TestDescriptorEquivalence:
    def test_describe_keypoints_matches_scalar(self, rng):
        from repro.vision.image import image_gradients
        from repro.vision.keypoints import (
            describe_keypoint,
            describe_keypoints,
            detect_keypoints,
        )

        for _ in range(5):
            image = rng.random((96, 128))
            keypoints = detect_keypoints(image, max_keypoints=50)
            if not keypoints:
                continue
            gx, gy = image_gradients(image)
            stacked = describe_keypoints(gx, gy, keypoints)
            for row, keypoint in zip(stacked, keypoints):
                scalar = describe_keypoint(gx, gy, keypoint)
                assert np.array_equal(row, scalar)


class TestGroupingEquivalence:
    def _random_detections(self, matcher, rng, count):
        cameras = list(matcher.image_to_ground)
        detections = []
        for i in range(count):
            w = float(rng.uniform(8, 20))
            h = float(rng.uniform(20, 50))
            detections.append(
                Detection(
                    bbox=BoundingBox(
                        x=float(rng.uniform(0, 140)),
                        y=float(rng.uniform(0, 90)),
                        w=w,
                        h=h,
                    ),
                    score=float(rng.uniform(0.1, 3.0)),
                    camera_id=cameras[int(rng.integers(len(cameras)))],
                    frame_index=1000,
                    algorithm="HOG",
                    color_feature=rng.normal(size=40),
                    truth_id=None,
                )
            )
        return detections

    def test_group_matches_reference(self, runner1, rng):
        """Same memberships and camera sets; centroids agree to float
        tolerance (the fast path's gating norm is scalar by design)."""
        matcher = runner1.engine.matcher
        for trial in range(20):
            detections = self._random_detections(
                matcher, rng, count=int(rng.integers(2, 25))
            )
            fast = matcher.group(detections)
            reference = matcher.group_reference(detections)
            fast_members = [
                [id(d) for d in g.detections] for g in fast
            ]
            ref_members = [
                [id(d) for d in g.detections] for g in reference
            ]
            assert fast_members == ref_members, f"trial {trial}"
            for gf, gr in zip(fast, reference):
                assert gf.ground_point == pytest.approx(
                    gr.ground_point, rel=1e-9, abs=1e-9
                )


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("backend", ["pool", "shm"])
    def test_backends_match_serial(self, runner1, backend, workers):
        """serial == pool == shm, bit for bit, at any worker count."""
        context = runner1.engine.context
        serial = DeploymentEngine(context, seed=2017).run(
            "full", budget=2.0, start=1000, end=1300
        )
        executor = make_executor(workers, backend=backend)
        engine = DeploymentEngine(context, seed=2017, executor=executor)
        try:
            result = engine.run("full", budget=2.0, start=1000, end=1300)
        finally:
            engine.close()
        assert vars(result) == vars(serial), (
            f"{backend} backend with {workers} workers drifted"
        )

    def test_random_specs_agree_across_backends(self, runner1, rng):
        """Property check over random run configurations."""
        context = runner1.engine.context
        for _ in range(3):
            policy = ["all_best", "subset", "full"][int(rng.integers(3))]
            budget = float(rng.choice([1.5, 2.0, 3.0]))
            start = 1000 + int(rng.integers(0, 4)) * 25
            end = start + 200
            baseline = None
            for backend, workers in (
                ("serial", 1), ("pool", 2), ("shm", 2),
            ):
                executor = make_executor(workers, backend=backend)
                engine = DeploymentEngine(
                    context, seed=2017, executor=executor
                )
                try:
                    result = engine.run(
                        policy, budget=budget, start=start, end=end
                    )
                finally:
                    engine.close()
                if baseline is None:
                    baseline = result
                else:
                    assert vars(result) == vars(baseline), (
                        f"{backend} drifted on {policy} "
                        f"[{start}, {end}) budget {budget}"
                    )


class TestShmCheckpointResume:
    def test_resume_under_shm_matches_uninterrupted(
        self, runner1, tmp_path
    ):
        """Crash mid-run under the shm backend, resume under shm, and
        the completed result is bit-identical to an uninterrupted
        serial run — checkpoints are backend-agnostic."""
        context = runner1.engine.context
        config = dict(budget=2.0, start=1000, end=1500)
        uninterrupted = DeploymentEngine(context, seed=2017).run(
            "full", **config
        )

        crashed = DeploymentEngine(
            context, seed=2017, executor=make_executor(2, backend="shm")
        )
        try:
            with pytest.raises(SimulatedCrash):
                crashed.run(
                    "full",
                    checkpointer=RunCheckpointer(
                        CheckpointConfig(directory=tmp_path, crash_after=0)
                    ),
                    **config,
                )
        finally:
            crashed.close()

        resumed_engine = DeploymentEngine(
            context, seed=2017, executor=make_executor(2, backend="shm")
        )
        try:
            resumed = resumed_engine.run(
                "full",
                checkpointer=RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, resume=True)
                ),
                **config,
            )
        finally:
            resumed_engine.close()
        assert vars(resumed) == vars(uninterrupted)
        assert not _shm_entries(), "resume leaked shared-memory segments"


class TestSharedFrameStore:
    def test_put_dedupes_by_frame_identity(self, runner1):
        engine = runner1.engine
        record = engine.dataset.frames(1000, 1001)[0]
        camera_id = engine.dataset.camera_ids[0]
        observation = record.observation(camera_id)
        store = SharedFrameStore()
        try:
            first = store.put(observation)
            second = store.put(observation)
            assert first == second
            stats = store.drain_stats()
            assert stats["shm_hits"] == 1
            assert stats["shm_misses"] == 1
            assert stats["shm_segments"] == 1
            # Round-trip: the shared bytes are the frame, exactly.
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=first.segment)
            try:
                view = np.frombuffer(
                    segment.buf,
                    dtype=np.dtype(first.dtype),
                    count=first.count,
                    offset=first.offset,
                ).reshape(first.shape)
                assert np.array_equal(view, observation.image)
                del view
            finally:
                segment.close()
        finally:
            store.close()
        assert not _shm_entries(), "store.close() leaked segments"

    def test_close_is_idempotent(self):
        store = SharedFrameStore(segment_bytes=4096)
        store.close()
        store.close()

    def test_serial_executor_has_no_stats(self):
        assert SerialDetectionExecutor().drain_stats() == {}

    def test_shm_executor_reports_stats(self, runner1):
        engine = runner1.engine
        executor = SharedMemoryDetectionExecutor(2)
        run_engine = DeploymentEngine(
            engine.context, seed=2017, executor=executor
        )
        try:
            run_engine.run("full", budget=2.0, start=1000, end=1100)
            # Assessment runs every algorithm on the same frames, so
            # the store must see hits; the run drains stats into
            # telemetry only when telemetry is attached, so they
            # accumulate here.
            stats = executor.drain_stats()
            assert stats["shm_misses"] > 0
            assert stats["shm_hits"] > 0
        finally:
            run_engine.close()
        assert not _shm_entries(), "executor.close() leaked segments"

"""Tests for library persistence and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.calibration import TrainingItem, TrainingLibrary
from repro.detection.scores import ScoreCalibrator
from repro.persistence import (
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)
from tests.test_core_calibration import make_profile


def sample_library():
    library = TrainingLibrary()
    for name in ("T1", "T2"):
        profiles = {
            "HOG": make_profile("HOG", f=0.7, energy=1.08, item=name),
            "ACF": make_profile("ACF", f=0.5, energy=0.07, item=name),
        }
        cal = ScoreCalibrator()
        cal.fit(
            np.array([2.0, 1.8, -1.0, -1.2]),
            np.array([1, 1, 0, 0]),
        )
        profiles["HOG"].calibrator = cal
        library.add(
            TrainingItem(
                name=name,
                profiles=profiles,
                features=np.arange(6, dtype=float).reshape(2, 3),
            )
        )
    return library


class TestPersistence:
    def test_round_trip_preserves_profiles(self):
        original = sample_library()
        restored = library_from_dict(library_to_dict(original))
        assert set(restored.names) == {"T1", "T2"}
        for name in restored.names:
            for algorithm in ("HOG", "ACF"):
                a = original.get(name).profile(algorithm)
                b = restored.get(name).profile(algorithm)
                assert a.threshold == b.threshold
                assert a.f_score == b.f_score
                assert a.energy_per_frame == b.energy_per_frame

    def test_round_trip_preserves_calibrator(self):
        original = sample_library()
        restored = library_from_dict(library_to_dict(original))
        cal_a = original.get("T1").profile("HOG").calibrator
        cal_b = restored.get("T1").profile("HOG").calibrator
        assert cal_b.is_fitted
        assert cal_b(1.5) == pytest.approx(cal_a(1.5))

    def test_round_trip_preserves_features(self):
        restored = library_from_dict(library_to_dict(sample_library()))
        np.testing.assert_allclose(
            restored.get("T1").features,
            np.arange(6, dtype=float).reshape(2, 3),
        )

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "library.json"
        save_library(sample_library(), path)
        restored = load_library(path)
        assert set(restored.names) == {"T1", "T2"}
        # The file really is JSON.
        json.loads(path.read_text())

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_library(tmp_path / "nope.json")

    def test_version_check(self):
        data = library_to_dict(sample_library())
        data["version"] = 99
        with pytest.raises(ValueError):
            library_from_dict(data)


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in (
            "table2", "table3", "table4", "table5",
            "fig3", "fig4", "fig5a", "fig5b", "fig6",
            "run", "train",
        ):
            args = parser.parse_args(
                [command] + (["--save", "x.json"] if command == "train" else [])
            )
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "HOG" in out and "LSVM" in out

    def test_train_writes_library(self, tmp_path, capsys):
        path = tmp_path / "lib.json"
        assert main(["train", "--dataset", "1", "--save", str(path)]) == 0
        restored = load_library(path)
        assert len(restored) == 4  # one item per camera

"""Metrics registry: instruments, exposition, and lossless round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.schema import validate_metrics_payload


class TestInstruments:
    def test_counter_accumulates_per_series(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.", labels=("kind",))
        c.inc(kind="a")
        c.inc(2.5, kind="a")
        c.inc(kind="b")
        snap = reg.snapshot()
        series = snap["metrics"][0]["series"]
        values = {s["labels"]["kind"]: s["value"] for s in series}
        assert values == {"a": 3.5, "b": 1.0}

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("c_total").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert reg.snapshot()["metrics"][0]["series"][0]["value"] == 4.0

    def test_histogram_buckets_cumulative_in_text(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render_text()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricError):
            reg.gauge("x_total")

    def test_label_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("y_total", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("y_total", labels=("b",))

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("z_total", labels=("k",)) is reg.counter(
            "z_total", labels=("k",)
        )


class TestMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1.0), (b, 2.0)):
            reg.counter("c_total").inc(n)
            reg.gauge("g").set(n)
            reg.histogram("h", buckets=(1.0,)).observe(n)
        a.merge(b.snapshot())
        snap = {m["name"]: m for m in a.snapshot()["metrics"]}
        assert snap["c_total"]["series"][0]["value"] == 3.0
        assert snap["g"]["series"][0]["value"] == 2.0  # last write wins
        assert snap["h"]["series"][0]["count"] == 2
        assert snap["h"]["series"][0]["sum"] == 3.0
        assert snap["h"]["series"][0]["bucket_counts"] == [1, 1]


# Hypothesis: arbitrary instrument traffic survives
# snapshot -> JSON -> parse -> merge-into-empty -> snapshot unchanged.
_names = st.sampled_from(["alpha_total", "beta", "gamma_seconds"])
_labels = st.sampled_from(["", "x", "y"])
_amounts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        _names,
        _labels,
        _amounts,
    ),
    max_size=60,
)


def _apply(ops):
    reg = MetricsRegistry()
    for kind, base, label, amount in ops:
        # Labelled and label-less traffic must use distinct names: the
        # registry (correctly) rejects redefining a metric's label set.
        name = f"{kind}_{base}" + ("_l" if label else "")
        labels = ("tag",) if label else ()
        kwargs = {"tag": label} if label else {}
        if kind == "counter":
            reg.counter(name, labels=labels).inc(amount, **kwargs)
        elif kind == "gauge":
            reg.gauge(name, labels=labels).set(amount, **kwargs)
        else:
            reg.histogram(
                name, labels=labels, buckets=DEFAULT_BUCKETS
            ).observe(amount, **kwargs)
    return reg


class TestRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(_ops)
    def test_snapshot_json_merge_round_trip_is_lossless(self, ops):
        reg = _apply(ops)
        snap = reg.snapshot()
        validate_metrics_payload(snap)

        # JSON round-trip preserves the snapshot exactly.
        parsed = json.loads(reg.to_json())
        assert parsed == snap

        # from_json reconstructs an equivalent registry.
        assert MetricsRegistry.from_json(reg.to_json()).snapshot() == snap

        # Merging into an empty registry reproduces the snapshot.
        merged = MetricsRegistry()
        merged.merge(snap)
        assert merged.snapshot() == snap

    @settings(max_examples=25, deadline=None)
    @given(_ops)
    def test_merge_is_additive_for_counters_and_histograms(self, ops):
        snap = _apply(ops).snapshot()
        doubled = MetricsRegistry()
        doubled.merge(snap)
        doubled.merge(snap)
        for one, two in zip(
            snap["metrics"], doubled.snapshot()["metrics"]
        ):
            assert one["name"] == two["name"]
            for s1, s2 in zip(one["series"], two["series"]):
                if one["type"] == "counter":
                    assert s2["value"] == s1["value"] * 2
                elif one["type"] == "histogram":
                    assert s2["count"] == s1["count"] * 2
                    assert s2["bucket_counts"] == [
                        c * 2 for c in s1["bucket_counts"]
                    ]
                else:  # gauge: last write wins
                    assert s2["value"] == s1["value"]


class TestExposition:
    def test_render_text_declares_types_and_help(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "Things counted.").inc()
        reg.gauge("g", "A level.").set(1.0)
        text = reg.render_text()
        assert "# TYPE c_total counter" in text
        assert "# HELP c_total Things counted." in text
        assert "# TYPE g gauge" in text

    def test_series_count(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labels=("k",))
        c.inc(k="a")
        c.inc(k="b")
        reg.gauge("g").set(0.0)
        assert reg.series_count() == 3

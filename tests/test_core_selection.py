"""Tests for camera-subset selection and algorithm downgrade, on
hand-constructed assessment data with known structure."""

import pytest

from repro.core.accuracy import DesiredAccuracy
from repro.core.calibration import TrainingItem
from repro.core.selection import (
    AssessmentData,
    CameraPlan,
    SelectionEngine,
)
from repro.detection.base import BoundingBox, Detection
from repro.geometry.homography import Homography
from repro.reid.matcher import CrossCameraMatcher
from tests.test_core_calibration import make_profile

CAMERAS = ["c1", "c2", "c3"]
# Three objects at distinct ground positions.
OBJECTS = {1: (100.0, 100.0), 2: (300.0, 100.0), 3: (100.0, 300.0)}


def detection(camera, obj_id, probability, algorithm):
    x, y = OBJECTS[obj_id]
    return Detection(
        bbox=BoundingBox(x - 5, y - 20, 10, 20),
        score=probability,
        camera_id=camera,
        frame_index=0,
        algorithm=algorithm,
        probability=probability,
        truth_id=obj_id,
    )


def build_assessment(per_camera):
    """per_camera: camera -> algorithm -> list of (obj_id, prob)."""
    frame = {}
    for camera, algorithms in per_camera.items():
        frame[camera] = {
            algorithm: [
                detection(camera, obj_id, prob, algorithm)
                for obj_id, prob in hits
            ]
            for algorithm, hits in algorithms.items()
        }
    return AssessmentData(frames=[frame])


def make_item(name):
    return TrainingItem(
        name=name,
        profiles={
            "GOOD": make_profile("GOOD", f=0.8, energy=1.0, item=name),
            "CHEAP": make_profile("CHEAP", f=0.6, energy=0.1, item=name),
        },
    )


def make_plans(cameras=CAMERAS, budget=5.0):
    return [
        CameraPlan(
            camera_id=c,
            item=make_item(f"T-{c}"),
            best_algorithm="GOOD",
            budget=budget,
        )
        for c in cameras
    ]


@pytest.fixture()
def engine():
    matcher = CrossCameraMatcher(
        {c: Homography.identity() for c in CAMERAS},
        ground_radius=10.0,
        use_color=False,
    )
    return SelectionEngine(matcher)


class TestGlobalAccuracy:
    def test_fuses_across_cameras(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.6)]},
            "c2": {"GOOD": [(1, 0.6)]},
        })
        acc = engine.global_accuracy(
            assessment, {"c1": "GOOD", "c2": "GOOD"}
        )
        assert acc.num_objects == 1
        assert acc.mean_probability == pytest.approx(1 - 0.4 * 0.4)

    def test_counts_union_of_objects(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9)]},
            "c2": {"GOOD": [(2, 0.9)]},
        })
        acc = engine.global_accuracy(
            assessment, {"c1": "GOOD", "c2": "GOOD"}
        )
        assert acc.num_objects == 2

    def test_assignment_selects_algorithm(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9), (2, 0.9)], "CHEAP": [(1, 0.5)]},
        })
        good = engine.global_accuracy(assessment, {"c1": "GOOD"})
        cheap = engine.global_accuracy(assessment, {"c1": "CHEAP"})
        assert good.num_objects == 2
        assert cheap.num_objects == 1


class TestRankCameras:
    def test_rank_by_expected_detections(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9)]},
            "c2": {"GOOD": [(1, 0.9), (2, 0.9), (3, 0.9)]},
            "c3": {"GOOD": [(1, 0.9), (2, 0.9)]},
        })
        ranked = engine.rank_cameras(assessment, make_plans())
        assert [p.camera_id for p in ranked] == ["c2", "c3", "c1"]


class TestGreedySubset:
    def test_stops_when_desired_met(self, engine):
        # c2 alone sees everything; the greedy should stop at one camera.
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9)]},
            "c2": {"GOOD": [(1, 0.95), (2, 0.95), (3, 0.95)]},
            "c3": {"GOOD": [(2, 0.9)]},
        })
        plans = make_plans()
        ranked = engine.rank_cameras(assessment, plans)
        desired = DesiredAccuracy(min_objects=3, min_probability=0.8)
        chosen, achieved = engine.greedy_subset(assessment, ranked, desired)
        assert [p.camera_id for p in chosen] == ["c2"]
        assert achieved.meets(desired)

    def test_adds_cameras_until_met(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9)]},
            "c2": {"GOOD": [(2, 0.9)]},
            "c3": {"GOOD": [(3, 0.9)]},
        })
        plans = make_plans()
        ranked = engine.rank_cameras(assessment, plans)
        desired = DesiredAccuracy(min_objects=3, min_probability=0.5)
        chosen, achieved = engine.greedy_subset(assessment, ranked, desired)
        assert len(chosen) == 3

    def test_returns_all_when_unreachable(self, engine):
        assessment = build_assessment({
            "c1": {"GOOD": [(1, 0.9)]},
            "c2": {"GOOD": [(1, 0.9)]},
            "c3": {"GOOD": [(1, 0.9)]},
        })
        plans = make_plans()
        ranked = engine.rank_cameras(assessment, plans)
        desired = DesiredAccuracy(min_objects=10, min_probability=0.5)
        chosen, achieved = engine.greedy_subset(assessment, ranked, desired)
        assert len(chosen) == 3
        assert not achieved.meets(desired)

    def test_empty_plans_raise(self, engine):
        with pytest.raises(ValueError):
            engine.greedy_subset(
                AssessmentData(frames=[{}]),
                [],
                DesiredAccuracy(1, 0.1),
            )


class TestDowngrade:
    def test_downgrades_when_accuracy_holds(self, engine):
        # CHEAP sees the same objects: downgrade should switch to it.
        assessment = build_assessment({
            "c1": {
                "GOOD": [(1, 0.9), (2, 0.9)],
                "CHEAP": [(1, 0.85), (2, 0.85)],
            },
        })
        plans = make_plans(["c1"])
        desired = DesiredAccuracy(min_objects=2, min_probability=0.5)
        assignment = engine.downgrade(assessment, plans, desired)
        assert assignment == {"c1": "CHEAP"}

    def test_keeps_good_when_cheap_misses(self, engine):
        assessment = build_assessment({
            "c1": {
                "GOOD": [(1, 0.9), (2, 0.9)],
                "CHEAP": [(1, 0.85)],  # misses object 2
            },
        })
        plans = make_plans(["c1"])
        desired = DesiredAccuracy(min_objects=2, min_probability=0.5)
        assignment = engine.downgrade(assessment, plans, desired)
        assert assignment == {"c1": "GOOD"}

    def test_reverse_order_downgrades_weakest_first(self, engine):
        """The least accurate camera is tried first; if its downgrade
        breaks the requirement, the pass stops without touching the
        stronger camera."""
        assessment = build_assessment({
            "c1": {
                "GOOD": [(1, 0.9), (2, 0.9), (3, 0.9)],
                "CHEAP": [(1, 0.8), (2, 0.8), (3, 0.8)],
            },
            "c2": {
                "GOOD": [(1, 0.9)],
                "CHEAP": [],
            },
        })
        plans = make_plans(["c1", "c2"])
        ranked = engine.rank_cameras(assessment, plans)
        desired = DesiredAccuracy(min_objects=3, min_probability=0.5)
        assignment = engine.downgrade(assessment, ranked, desired)
        # c2 (weaker) is tried first; CHEAP there loses its only object
        # but objects 1-3 still come from c1 -> accepted.  Then c1 must
        # keep at least the object count: CHEAP on c1 keeps all three.
        assert assignment["c2"] == "CHEAP" or assignment["c1"] == "GOOD"

    def test_stops_at_first_failure(self, engine):
        """Per Section IV-B.4 the pass stops at the first camera with
        no viable substitution."""
        assessment = build_assessment({
            "c1": {
                "GOOD": [(1, 0.9), (2, 0.9)],
                "CHEAP": [(1, 0.85), (2, 0.85)],
            },
            "c2": {
                "GOOD": [(3, 0.9)],
                "CHEAP": [],  # downgrade would lose object 3
            },
        })
        plans = make_plans(["c1", "c2"])
        ranked = engine.rank_cameras(assessment, plans)
        desired = DesiredAccuracy(min_objects=3, min_probability=0.5)
        assignment = engine.downgrade(assessment, ranked, desired)
        # c2 is weaker (1 object) so it is tried first and fails ->
        # the stronger c1 is never downgraded.
        assert assignment == {"c1": "GOOD", "c2": "GOOD"}

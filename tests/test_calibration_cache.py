"""Calibration-artifact caching: PCA subspaces and GFK factors.

A second calibration pass over unchanged feature stacks must be
served entirely from the content-keyed cache — identical arrays, zero
recomputation, a nonzero hit counter.
"""

import numpy as np
import pytest

from repro.core.calibration import (
    AlgorithmProfile,
    TrainingItem,
    TrainingLibrary,
)
from repro.domain_adaptation.gfk import geodesic_flow_kernel
from repro.domain_adaptation.pca import uncentered_basis
from repro.domain_adaptation.similarity import VideoComparator
from repro.perf.cache import ArrayCache


def _profile(algorithm: str = "HOG") -> AlgorithmProfile:
    return AlgorithmProfile(
        algorithm=algorithm,
        training_item="T",
        threshold=0.5,
        precision=0.8,
        recall=0.7,
        f_score=0.75,
        energy_per_frame=1.0,
        time_per_frame=0.1,
    )


class TestBasisCache:
    def test_uncentered_basis_cached(self, rng):
        cache = ArrayCache()
        data = rng.normal(size=(12, 40))
        first = uncentered_basis(data, 6, cache=cache)
        second = uncentered_basis(data.copy(), 6, cache=cache)
        assert second is first  # served by reference from the cache
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_array_equal(
            first, uncentered_basis(data, 6)  # uncached ground truth
        )

    def test_different_dim_misses(self, rng):
        cache = ArrayCache()
        data = rng.normal(size=(12, 40))
        uncentered_basis(data, 6, cache=cache)
        uncentered_basis(data, 4, cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_training_item_subspace(self, rng):
        cache = ArrayCache()
        item = TrainingItem(
            name="T",
            profiles={"HOG": _profile()},
            features=rng.normal(size=(10, 30)),
        )
        a = item.subspace(5, cache=cache)
        b = item.subspace(5, cache=cache)
        assert b is a
        assert cache.hits == 1

    def test_featureless_item_raises(self):
        item = TrainingItem(name="T", profiles={"HOG": _profile()})
        with pytest.raises(ValueError, match="no feature stack"):
            item.subspace(5)

    def test_library_shares_cache(self, rng):
        library = TrainingLibrary()
        library.add(
            TrainingItem(
                name="T-a",
                profiles={"HOG": _profile()},
                features=rng.normal(size=(10, 30)),
            )
        )
        library.subspace("T-a", 5)
        library.subspace("T-a", 5)
        stats = library.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestGfkCache:
    def test_second_pass_hits_with_identical_factors(self, rng):
        cache = ArrayCache()
        x = np.linalg.qr(rng.normal(size=(50, 8)))[0]
        z = np.linalg.qr(rng.normal(size=(50, 8)))[0]
        first = geodesic_flow_kernel(x, z, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        second = geodesic_flow_kernel(x.copy(), z.copy(), cache=cache)
        assert cache.hits == 1
        assert second is first
        np.testing.assert_array_equal(second.factor, first.factor)
        np.testing.assert_array_equal(second.core, first.core)

    def test_distinct_bases_miss(self, rng):
        cache = ArrayCache()
        x = np.linalg.qr(rng.normal(size=(50, 8)))[0]
        z = np.linalg.qr(rng.normal(size=(50, 8)))[0]
        w = np.linalg.qr(rng.normal(size=(50, 8)))[0]
        geodesic_flow_kernel(x, z, cache=cache)
        geodesic_flow_kernel(x, w, cache=cache)
        assert cache.misses == 2 and cache.hits == 0


class TestComparatorCaching:
    def _comparator(self, rng) -> tuple[VideoComparator, np.ndarray]:
        comparator = VideoComparator(subspace_dim=6)
        for name in ("T-a", "T-b"):
            comparator.add_training_video(
                name, rng.normal(size=(10, 60))
            )
        incoming = rng.normal(size=(8, 60))
        return comparator, incoming

    def test_second_calibration_pass_recomputes_nothing(self, rng):
        comparator, incoming = self._comparator(rng)
        first = comparator.similarities(incoming)
        misses_after_first = comparator.cache.misses
        assert misses_after_first > 0
        second = comparator.similarities(incoming)
        # Zero new GFK/PCA computations on the second pass: every
        # basis and kernel factor is served from the cache.
        assert comparator.cache.misses == misses_after_first
        assert comparator.cache.hits >= misses_after_first
        assert second == first

    def test_new_incoming_video_reuses_training_side(self, rng):
        comparator, incoming = self._comparator(rng)
        comparator.similarities(incoming)
        misses_after_first = comparator.cache.misses
        other = rng.normal(size=(8, 60))
        comparator.similarities(other)
        # The training bases (one per item) are reused; only the new
        # incoming basis and the new kernels are computed.
        new_misses = comparator.cache.misses - misses_after_first
        assert new_misses == 1 + len(comparator.training_names)
        assert comparator.cache.hits > 0

    def test_cache_stats_exposed(self, rng):
        comparator, incoming = self._comparator(rng)
        comparator.similarities(incoming)
        stats = comparator.cache_stats()
        assert stats["misses"] > 0

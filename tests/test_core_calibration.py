"""Tests for offline training: profiles and the training library."""

import numpy as np
import pytest

from repro.core.calibration import (
    AlgorithmProfile,
    TrainingItem,
    TrainingLibrary,
    profile_algorithm,
)
from repro.datasets.groundtruth import ground_truth_boxes
from repro.detection.detectors import make_detector
from repro.detection.scores import ScoreCalibrator
from repro.energy.model import ProcessingEnergyModel
from repro.world.environment import LAB
from repro.world.renderer import Renderer
from repro.world.scene import Scene, make_camera_ring


def make_profile(algorithm="HOG", f=0.7, energy=1.0, item="T1"):
    return AlgorithmProfile(
        algorithm=algorithm,
        training_item=item,
        threshold=0.5,
        precision=f,
        recall=f,
        f_score=f,
        energy_per_frame=energy,
        time_per_frame=1.0,
    )


class TestAlgorithmProfile:
    def test_efficiency(self):
        profile = make_profile(f=0.8, energy=2.0)
        assert profile.efficiency == pytest.approx(0.4)

    def test_zero_energy_is_infinite_efficiency(self):
        assert make_profile(energy=0.0).efficiency == float("inf")


class TestProfileAlgorithm:
    @pytest.fixture(scope="class")
    def frames(self):
        scene = Scene(LAB, num_people=6, seed=9)
        camera = make_camera_ring(LAB, num_cameras=1)[0]
        renderer = Renderer(scene, camera)
        detector = make_detector("HOG", LAB)
        rng = np.random.default_rng(4)
        out = []
        for i in range(150):
            scene.step()
            if i % 10 == 0:
                obs = renderer.render()
                out.append(
                    (detector.detect(obs, rng), ground_truth_boxes(obs))
                )
        return out

    def test_builds_complete_profile(self, frames):
        detector = make_detector("HOG", LAB)
        model = ProcessingEnergyModel(width=360, height=288)
        profile = profile_algorithm(detector, frames, "T1", model)
        assert profile.algorithm == "HOG"
        assert profile.training_item == "T1"
        assert 0.0 <= profile.precision <= 1.0
        assert 0.0 <= profile.recall <= 1.0
        assert profile.energy_per_frame == pytest.approx(1.08, rel=0.02)
        assert profile.calibrator.is_fitted

    def test_calibrator_separates_scores(self, frames):
        detector = make_detector("HOG", LAB)
        model = ProcessingEnergyModel(width=360, height=288)
        profile = profile_algorithm(detector, frames, "T1", model)
        high = profile.calibrator(profile.threshold + 1.0)
        low = profile.calibrator(profile.threshold - 2.0)
        assert high > low


class TestTrainingItem:
    def test_ranked_by_f_score(self):
        item = TrainingItem(
            name="T1",
            profiles={
                "HOG": make_profile("HOG", f=0.66),
                "ACF": make_profile("ACF", f=0.50),
                "LSVM": make_profile("LSVM", f=0.89),
            },
        )
        ranked = item.ranked()
        assert [p.algorithm for p in ranked] == ["LSVM", "HOG", "ACF"]

    def test_rejects_empty_profiles(self):
        with pytest.raises(ValueError):
            TrainingItem(name="T1", profiles={})

    def test_rejects_mismatched_key(self):
        with pytest.raises(ValueError):
            TrainingItem(
                name="T1", profiles={"HOG": make_profile("ACF")}
            )

    def test_unknown_algorithm_raises(self):
        item = TrainingItem(
            name="T1", profiles={"HOG": make_profile("HOG")}
        )
        with pytest.raises(KeyError):
            item.profile("ACF")


class TestTrainingLibrary:
    def _item(self, name):
        return TrainingItem(
            name=name, profiles={"HOG": make_profile("HOG", item=name)}
        )

    def test_add_and_get(self):
        library = TrainingLibrary()
        library.add(self._item("T1"))
        assert library.get("T1").name == "T1"
        assert "T1" in library
        assert len(library) == 1

    def test_duplicate_rejected(self):
        library = TrainingLibrary()
        library.add(self._item("T1"))
        with pytest.raises(ValueError):
            library.add(self._item("T1"))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            TrainingLibrary().get("nope")

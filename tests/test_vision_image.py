"""Tests for basic image operations."""

import numpy as np
import pytest

from repro.vision.image import (
    box_sum,
    crop,
    image_gradients,
    integral_image,
    resize_bilinear,
)


class TestResizeBilinear:
    def test_identity_when_same_size(self, rng):
        img = rng.uniform(size=(20, 30))
        out = resize_bilinear(img, 30, 20)
        np.testing.assert_allclose(out, img)

    def test_output_shape(self, rng):
        img = rng.uniform(size=(33, 47))
        out = resize_bilinear(img, 64, 128)
        assert out.shape == (128, 64)

    def test_constant_image_stays_constant(self):
        img = np.full((10, 10), 0.7)
        out = resize_bilinear(img, 23, 17)
        np.testing.assert_allclose(out, 0.7)

    def test_preserves_value_range(self, rng):
        img = rng.uniform(size=(16, 16))
        out = resize_bilinear(img, 40, 40)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12

    def test_downsample_then_mean_close(self, rng):
        img = rng.uniform(size=(64, 64))
        out = resize_bilinear(img, 8, 8)
        assert abs(out.mean() - img.mean()) < 0.05

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), 0, 5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4, 3)), 8, 8)


class TestGradients:
    def test_horizontal_ramp(self):
        img = np.tile(np.arange(10.0), (5, 1))
        gx, gy = image_gradients(img)
        np.testing.assert_allclose(gx[:, 1:-1], 1.0)
        np.testing.assert_allclose(gy, 0.0, atol=1e-12)

    def test_vertical_ramp(self):
        img = np.tile(np.arange(8.0)[:, None], (1, 6))
        gx, gy = image_gradients(img)
        np.testing.assert_allclose(gy[1:-1, :], 1.0)
        np.testing.assert_allclose(gx, 0.0, atol=1e-12)

    def test_constant_image_zero_gradient(self):
        gx, gy = image_gradients(np.full((6, 6), 3.0))
        np.testing.assert_allclose(gx, 0.0)
        np.testing.assert_allclose(gy, 0.0)


class TestIntegralImage:
    def test_total_sum(self, rng):
        img = rng.uniform(size=(12, 9))
        ii = integral_image(img)
        assert ii[-1, -1] == pytest.approx(img.sum())

    def test_box_sum_matches_slice(self, rng):
        img = rng.uniform(size=(15, 15))
        ii = integral_image(img)
        assert box_sum(ii, 3, 4, 10, 12) == pytest.approx(
            img[3:10, 4:12].sum()
        )

    def test_zero_area_box(self, rng):
        img = rng.uniform(size=(5, 5))
        ii = integral_image(img)
        assert box_sum(ii, 2, 2, 2, 2) == 0.0


class TestCrop:
    def test_interior_crop(self, rng):
        img = rng.uniform(size=(20, 20))
        out = crop(img, (5, 5, 6, 4))
        assert out.shape == (4, 6)

    def test_clamps_to_bounds(self, rng):
        img = rng.uniform(size=(10, 10))
        out = crop(img, (-5, -5, 8, 8))
        assert out.shape == (3, 3)

    def test_fully_outside_is_empty(self, rng):
        img = rng.uniform(size=(10, 10))
        out = crop(img, (50, 50, 5, 5))
        assert out.size == 0

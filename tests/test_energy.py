"""Tests for the energy substrate: processing costs, communication,
batteries, budgets and metering."""

import pytest

from repro.energy.battery import Battery, frame_budget
from repro.energy.communication import (
    CommunicationEnergyModel,
    jpeg_frame_bytes,
)
from repro.energy.meter import EnergyMeter
from repro.energy.model import (
    ProcessingEnergyModel,
    processing_energy,
    processing_time,
)


class TestProcessingEnergy:
    """The fitted power laws must reproduce the paper's Joule figures
    at the two measured resolutions."""

    LAB_MP = 360 * 288 / 1e6
    CHAP_MP = 1024 * 768 / 1e6

    @pytest.mark.parametrize("algorithm,lab_j,chap_j", [
        ("HOG", 1.08, 9.86),
        ("ACF", 0.07, 0.315),
        ("C4", 4.92, 5.56),
        ("LSVM", 3.31, 25.06),
    ])
    def test_matches_paper_tables(self, algorithm, lab_j, chap_j):
        assert processing_energy(algorithm, self.LAB_MP) == pytest.approx(
            lab_j, rel=0.02
        )
        assert processing_energy(algorithm, self.CHAP_MP) == pytest.approx(
            chap_j, rel=0.02
        )

    @pytest.mark.parametrize("algorithm,lab_s,chap_s", [
        ("HOG", 1.5, 3.4),
        ("ACF", 0.1, 0.4),
        ("C4", 2.4, 6.8),
        ("LSVM", 6.2, 32.2),
    ])
    def test_times_match_paper_tables(self, algorithm, lab_s, chap_s):
        assert processing_time(algorithm, self.LAB_MP) == pytest.approx(
            lab_s, rel=0.02
        )
        assert processing_time(algorithm, self.CHAP_MP) == pytest.approx(
            chap_s, rel=0.02
        )

    def test_energy_ordering_on_lab(self):
        """ACF << HOG < LSVM < C4 at 360x288 (Table II)."""
        costs = {
            a: processing_energy(a, self.LAB_MP)
            for a in ("HOG", "ACF", "C4", "LSVM")
        }
        assert costs["ACF"] < costs["HOG"] < costs["LSVM"] < costs["C4"]

    def test_monotone_in_resolution(self):
        for algorithm in ("HOG", "ACF", "C4", "LSVM"):
            assert processing_energy(algorithm, 0.8) > processing_energy(
                algorithm, 0.1
            )

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            processing_energy("YOLO", 0.1)

    def test_rejects_nonpositive_megapixels(self):
        with pytest.raises(ValueError):
            processing_energy("HOG", 0.0)


class TestProcessingEnergyModel:
    def test_bound_to_resolution(self):
        model = ProcessingEnergyModel(width=360, height=288)
        assert model.energy_per_frame("HOG") == pytest.approx(1.08, rel=0.02)

    def test_cheapest(self):
        model = ProcessingEnergyModel(width=360, height=288)
        assert model.cheapest(["HOG", "ACF", "C4"]) == "ACF"

    def test_cheapest_empty_raises(self):
        model = ProcessingEnergyModel(width=360, height=288)
        with pytest.raises(ValueError):
            model.cheapest([])

    def test_affordable_respects_budget(self):
        model = ProcessingEnergyModel(width=360, height=288)
        affordable = model.affordable(
            ["HOG", "ACF", "C4", "LSVM"], budget=2.0
        )
        assert set(affordable) == {"HOG", "ACF"}

    def test_affordable_includes_communication(self):
        model = ProcessingEnergyModel(width=360, height=288)
        # HOG is 1.08; with 0.1 communication, a 1.1 budget excludes it.
        affordable = model.affordable(["HOG", "ACF"], 1.1, communication=0.1)
        assert affordable == ["ACF"]

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            ProcessingEnergyModel(width=0, height=100)


class TestCommunication:
    def test_jpeg_size_scales_with_pixels(self):
        assert jpeg_frame_bytes(1024, 768) > jpeg_frame_bytes(360, 288)

    def test_per_frame_cost_small_relative_to_processing(self):
        comm = CommunicationEnergyModel(width=360, height=288)
        assert comm.per_frame_cost() < 0.1  # << HOG's 1.08 J

    def test_metadata_cost_linear(self):
        comm = CommunicationEnergyModel(width=360, height=288)
        assert comm.metadata_cost(10) == pytest.approx(
            10 * comm.metadata_cost(1)
        )

    def test_weak_link_costs_more(self):
        good = CommunicationEnergyModel(width=360, height=288)
        weak = CommunicationEnergyModel(
            width=360, height=288, link_quality=3.0
        )
        assert weak.per_frame_cost() == pytest.approx(
            3 * good.per_frame_cost()
        )

    def test_rejects_link_quality_below_one(self):
        with pytest.raises(ValueError):
            CommunicationEnergyModel(width=10, height=10, link_quality=0.5)

    def test_rejects_negative_bytes(self):
        comm = CommunicationEnergyModel(width=10, height=10)
        with pytest.raises(ValueError):
            comm.transfer_energy(-1)

    def test_feature_upload_cost(self):
        comm = CommunicationEnergyModel(width=360, height=288)
        # 100 frames x ~16 KB each.
        assert comm.feature_upload_cost(100) == pytest.approx(
            100 * 16720 * 5e-7, rel=0.01
        )


class TestBattery:
    def test_draw_and_residual(self):
        battery = Battery(capacity_joules=100.0)
        drawn = battery.draw(30.0)
        assert drawn == 30.0
        assert battery.residual == 70.0

    def test_draw_clamped_at_capacity(self):
        battery = Battery(capacity_joules=10.0)
        drawn = battery.draw(25.0)
        assert drawn == 10.0
        assert battery.is_depleted

    def test_rejects_negative_draw(self):
        with pytest.raises(ValueError):
            Battery().draw(-1.0)

    def test_fraction_remaining(self):
        battery = Battery(capacity_joules=200.0)
        battery.draw(50.0)
        assert battery.fraction_remaining == pytest.approx(0.75)

    def test_frame_budget_formula(self):
        """Paper: residual / (operation_time / cadence)."""
        budget = frame_budget(
            residual_joules=10800.0,
            operation_time_s=6 * 3600,
            seconds_per_frame=2.0,
        )
        assert budget == pytest.approx(1.0)

    def test_budget_shrinks_as_battery_drains(self):
        battery = Battery(capacity_joules=1000.0)
        before = battery.budget_for(3600, 2.0)
        battery.draw(500.0)
        after = battery.budget_for(3600, 2.0)
        assert after == pytest.approx(before / 2)

    def test_rejects_bad_budget_inputs(self):
        with pytest.raises(ValueError):
            frame_budget(-1.0, 10, 1)
        with pytest.raises(ValueError):
            frame_budget(10, 0, 1)


class TestEnergyMeter:
    def test_totals_accumulate(self):
        meter = EnergyMeter()
        meter.record_processing("cam1", 2.0)
        meter.record_processing("cam1", 3.0)
        meter.record_communication("cam2", 1.5)
        assert meter.total("cam1") == 5.0
        assert meter.total() == 6.5

    def test_category_totals(self):
        meter = EnergyMeter()
        meter.record_processing("cam1", 2.0)
        meter.record_communication("cam1", 0.5)
        assert meter.total_by_category(EnergyMeter.PROCESSING) == 2.0
        assert meter.total_by_category(EnergyMeter.COMMUNICATION) == 0.5

    def test_snapshot_is_copy(self):
        meter = EnergyMeter()
        meter.record_processing("cam1", 1.0)
        snap = meter.snapshot()
        snap["cam1"]["processing"] = 99.0
        assert meter.total("cam1") == 1.0

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            EnergyMeter().record_processing("cam1", -1.0)

    def test_reset(self):
        meter = EnergyMeter()
        meter.record_processing("cam1", 1.0)
        meter.reset()
        assert meter.total() == 0.0
        assert meter.camera_ids == []

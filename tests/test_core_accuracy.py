"""Tests for global accuracy estimation (Section IV-C)."""

import pytest

from repro.core.accuracy import (
    DesiredAccuracy,
    GlobalAccuracy,
    estimate_global_accuracy,
)
from repro.detection.base import BoundingBox, Detection
from repro.reid.fusion import ObjectGroup


def group(probabilities):
    detections = [
        Detection(
            bbox=BoundingBox(0, 0, 10, 20),
            score=0.5,
            camera_id=f"c{i}",
            frame_index=0,
            algorithm="HOG",
            probability=p,
        )
        for i, p in enumerate(probabilities)
    ]
    return ObjectGroup(detections=detections)


class TestGlobalAccuracy:
    def test_meets_requirement(self):
        accuracy = GlobalAccuracy(num_objects=10, mean_probability=0.8)
        assert accuracy.meets(DesiredAccuracy(8, 0.7))
        assert not accuracy.meets(DesiredAccuracy(11, 0.7))
        assert not accuracy.meets(DesiredAccuracy(8, 0.9))

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            GlobalAccuracy(num_objects=-1, mean_probability=0.5)
        with pytest.raises(ValueError):
            GlobalAccuracy(num_objects=1, mean_probability=1.5)


class TestDesiredAccuracy:
    def test_from_baseline_scales(self):
        baseline = GlobalAccuracy(num_objects=100, mean_probability=0.9)
        desired = DesiredAccuracy.from_baseline(
            baseline, gamma_n=0.85, gamma_p=0.8
        )
        assert desired.min_objects == pytest.approx(85.0)
        assert desired.min_probability == pytest.approx(0.72)

    def test_rejects_bad_gamma(self):
        baseline = GlobalAccuracy(1, 0.5)
        with pytest.raises(ValueError):
            DesiredAccuracy.from_baseline(baseline, gamma_n=0.0, gamma_p=0.8)
        with pytest.raises(ValueError):
            DesiredAccuracy.from_baseline(baseline, gamma_n=0.8, gamma_p=1.2)


class TestEstimateGlobalAccuracy:
    def test_counts_objects_across_frames(self):
        frames = [
            [group([0.8]), group([0.6])],
            [group([0.9])],
        ]
        accuracy = estimate_global_accuracy(frames)
        assert accuracy.num_objects == 3

    def test_mean_probability_uses_fusion(self):
        frames = [[group([0.5, 0.5])]]  # Eq. 6 -> 0.75
        accuracy = estimate_global_accuracy(frames)
        assert accuracy.mean_probability == pytest.approx(0.75)

    def test_empty_frames(self):
        accuracy = estimate_global_accuracy([[], []])
        assert accuracy.num_objects == 0
        assert accuracy.mean_probability == 0.0

    def test_more_cameras_raise_probability(self):
        one = estimate_global_accuracy([[group([0.6])]])
        two = estimate_global_accuracy([[group([0.6, 0.6])]])
        assert two.mean_probability > one.mean_probability

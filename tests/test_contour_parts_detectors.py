"""Tests for the contour (C4-style) and part-based (LSVM-style)
real detectors."""

import numpy as np
import pytest

from repro.detection.contour_detector import (
    ContourDetector,
    WINDOW_PX,
    edge_distance_transform,
    person_silhouette,
)
from repro.detection.parts_detector import PART_SPECS, PartBasedDetector


class TestSilhouette:
    def test_points_inside_window(self):
        pts = person_silhouette()
        assert np.all(pts[:, 0] >= 0)
        assert np.all(pts[:, 0] < WINDOW_PX[0])
        assert np.all(pts[:, 1] >= 0)
        assert np.all(pts[:, 1] < WINDOW_PX[1])

    def test_density_configurable(self):
        sparse = person_silhouette(num_points=30)
        dense = person_silhouette(num_points=90)
        assert len(dense) > len(sparse)


class TestEdgeDistanceTransform:
    def test_zero_at_edges(self):
        img = np.zeros((20, 20))
        img[:, 10:] = 1.0  # vertical step edge
        dist = edge_distance_transform(img)
        # Distance is zero on the edge column(s)...
        assert dist[:, 9:11].min() == 0.0
        # ... and grows away from it.
        assert dist[5, 0] > dist[5, 7]

    def test_flat_image_far_everywhere(self):
        dist = edge_distance_transform(np.full((16, 16), 0.5))
        assert dist.min() >= 16


class TestContourDetector:
    @pytest.fixture(scope="class")
    def detector(self):
        return ContourDetector()

    def test_detects_people_above_chance(self, detector, dataset1):
        from repro.datasets.groundtruth import ground_truth_boxes
        from repro.detection.metrics import best_threshold

        rng = np.random.default_rng(6)
        frames = []
        for record in dataset1.frames(1000, 1400, only_ground_truth=True):
            obs = record.observation(dataset1.camera_ids[0])
            frames.append(
                (detector.detect(obs, rng, threshold=-2.5),
                 ground_truth_boxes(obs))
            )
        _, counts = best_threshold(frames, num_steps=60)
        assert counts.f_score > 0.3

    def test_scores_are_negative_chamfer(self, detector, dataset1):
        rng = np.random.default_rng(7)
        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        for det in detector.detect(obs, rng, threshold=-3.0):
            assert det.score <= 0.0
            assert det.score >= -detector.max_chamfer

    def test_no_training_required(self):
        """Contour matching is template-only: construction suffices."""
        detector = ContourDetector(num_template_points=30)
        assert len(detector.template) >= 20


class TestPartSpecs:
    def test_parts_cover_head_and_legs(self):
        names = [name for name, _, _ in PART_SPECS]
        assert names == ["head", "legs"]

    def test_part_rows_within_window(self):
        from repro.detection.window_detector import WINDOW_BLOCKS

        for _, anchor, rows in PART_SPECS:
            assert 0 <= anchor
            assert anchor + rows <= WINDOW_BLOCKS[1]


@pytest.fixture(scope="module")
def trained_parts(dataset1):
    rng = np.random.default_rng(5)
    train_obs = []
    for record in dataset1.frames(0, 500, only_ground_truth=True):
        for cam in dataset1.camera_ids[:2]:
            train_obs.append(record.observations[cam])
    return PartBasedDetector.train(train_obs, rng)


class TestPartBasedDetector:
    def test_trains_root_and_parts(self, trained_parts):
        assert len(trained_parts.parts) == 2
        assert trained_parts.root_weights.shape == (15, 7, 36)

    def test_detects_people(self, trained_parts, dataset1):
        from repro.datasets.groundtruth import ground_truth_boxes
        from repro.detection.metrics import best_threshold

        rng = np.random.default_rng(6)
        frames = []
        for record in dataset1.frames(1000, 1400, only_ground_truth=True):
            obs = record.observation(dataset1.camera_ids[0])
            frames.append(
                (trained_parts.detect(obs, rng, threshold=-1.2),
                 ground_truth_boxes(obs))
            )
        _, counts = best_threshold(frames, num_steps=60)
        assert counts.f_score > 0.45

    def test_part_score_map_shapes(self, trained_parts, dataset1):
        from repro.detection.window_detector import block_grid
        from repro.vision.image import resize_bilinear

        record = dataset1.frames(1000, 1001)[0]
        obs = record.observation(dataset1.camera_ids[0])
        scaled = resize_bilinear(obs.image, 320, 256)
        blocks = block_grid(scaled)
        for part in trained_parts.parts:
            part_map = part.score_map(blocks)
            # Part windows are shorter than the root window, so their
            # dense maps are at least as tall.
            assert part_map.shape[0] >= (
                blocks.shape[0] - 15 + 1
            )

    def test_rejects_bad_root_shape(self, trained_parts):
        with pytest.raises(ValueError):
            PartBasedDetector(
                root_weights=np.zeros((3, 3, 3)),
                root_bias=0.0,
                parts=trained_parts.parts,
            )

    def test_occlusion_robustness_vs_rigid(self, trained_parts, dataset1):
        """Part-based scoring keeps more signal on occluded people than
        the rigid template (qualitative DPM property)."""
        from repro.datasets.groundtruth import ground_truth_boxes
        from repro.detection.metrics import match_detections

        rng = np.random.default_rng(8)
        tp_on_occluded = 0
        occluded_total = 0
        for record in dataset1.frames(1000, 1800, only_ground_truth=True):
            obs = record.observation(dataset1.camera_ids[0])
            occluded = [
                v for v in obs.objects if 0.3 < v.occlusion < 0.9
            ]
            if not occluded:
                continue
            occluded_total += len(occluded)
            detections = trained_parts.detect(obs, rng, threshold=-0.25)
            from repro.detection.base import BoundingBox

            boxes = [BoundingBox.from_tuple(v.bbox) for v in occluded]
            counts = match_detections(detections, boxes)
            tp_on_occluded += counts.tp
        if occluded_total >= 5:
            assert tp_on_occluded > 0

"""Shared fixtures.

Heavy artefacts (datasets, offline-trained runners) are session-scoped
so the suite pays their construction cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import SimulationRunner
from repro.datasets.synthetic import make_dataset


@pytest.fixture(scope="session")
def dataset1():
    """Dataset #1 ("lab") with frame caching on."""
    return make_dataset(1)


@pytest.fixture(scope="session")
def dataset2():
    """Dataset #2 ("chap")."""
    return make_dataset(2)


@pytest.fixture(scope="session")
def runner1(dataset1):
    """An offline-trained runner on dataset #1."""
    return SimulationRunner(dataset1, rng=np.random.default_rng(2017))


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)

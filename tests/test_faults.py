"""Fault injection and fault-tolerant coordination.

Covers the fault plan (JSON round-trip, matching), the injector
(crashes, reboots, battery exhaustion, partitions, lossy links), the
simulator's failure semantics (disconnect/reconnect, down nodes,
duplicate-connect guard), camera depletion behaviour, controller
liveness + re-selection after a crash, and the zero-fault determinism
regression pinning today's outputs bit-for-bit.
"""

import json
import math

import numpy as np
import pytest

from repro.energy.battery import Battery
from repro.energy.model import ProcessingEnergyModel
from repro.faults import (
    BatteryFault,
    CalibrationDrift,
    ClockSkew,
    Crash,
    FaultInjector,
    FaultPlan,
    LinkFault,
    MessageCorruption,
    Partition,
    SensorFault,
)
from repro.network.messages import EnergyReport
from repro.network.node import CameraSensorNode, ControllerNode
from repro.network.reliability import node_seed
from repro.network.simulator import EventSimulator, Node


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def receive(self, message):
        self.received.append(message)


def _pair():
    sim = EventSimulator()
    a, b = Recorder("a"), Recorder("b")
    sim.register_node(a)
    sim.register_node(b)
    sim.connect("a", "b")
    return sim, a, b


def _report(joules=1.0):
    return EnergyReport(sender="a", recipient="b", residual_joules=joules)


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=11,
            link_faults=(
                LinkFault("a", "b", loss_rate=0.3, extra_latency_s=0.1),
                LinkFault(loss_rate=0.05, start_s=2.0),
            ),
            partitions=(Partition("a", "b", start_s=1.0, end_s=4.0),),
            crashes=(Crash("a", at_s=3.0, reboot_s=5.0),),
            battery_faults=(BatteryFault("b", at_s=2.0, fraction=0.5),),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # Open-ended windows serialise as null, not Infinity.
        assert "Infinity" not in path.read_text()
        assert json.loads(path.read_text())["link_faults"][1]["end_s"] is None

    def test_wildcard_matching(self):
        fault = LinkFault(loss_rate=0.1)
        assert fault.matches("x", "y", 0.0)
        named = LinkFault("a", "*", loss_rate=0.1)
        assert named.matches("a", "z", 0.0)
        assert named.matches("z", "a", 0.0)
        assert not named.matches("x", "y", 0.0)

    def test_time_window(self):
        fault = LinkFault(loss_rate=0.1, start_s=1.0, end_s=2.0)
        assert not fault.matches("x", "y", 0.5)
        assert fault.matches("x", "y", 1.0)
        assert not fault.matches("x", "y", 2.0)

    def test_uniform_loss_zero_is_empty(self):
        assert FaultPlan.uniform_loss(0.0, seed=3).is_empty
        assert not FaultPlan.uniform_loss(0.2, seed=3).is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFault(loss_rate=1.5)
        with pytest.raises(ValueError):
            Partition("a", "b", start_s=2.0, end_s=1.0)
        with pytest.raises(ValueError):
            Crash("a", at_s=2.0, reboot_s=1.0)
        with pytest.raises(ValueError):
            BatteryFault("a", at_s=0.0, fraction=0.0)

    def test_data_fault_round_trip(self, tmp_path):
        """The data-plane fault classes survive the JSON round trip,
        open-ended windows included."""
        plan = FaultPlan(seed=3).with_data_faults(
            SensorFault("a", noise=0.5, false_positive_rate=2.0),
            SensorFault("b", start_s=1.0, end_s=9.0, stuck=True),
            CalibrationDrift("a", score_drift_per_s=-0.1),
            ClockSkew("b", skew=0.5, start_s=2.0),
            MessageCorruption(node_a="a", rate=0.25),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        assert "Infinity" not in path.read_text()

    def test_truncated_plan_file_raises(self, tmp_path):
        """A half-written plan must fail loudly, not load as empty."""
        path = tmp_path / "plan.json"
        full = json.dumps(FaultPlan(seed=1).to_dict())
        path.write_text(full[: len(full) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.load(path)

    def test_future_versioned_kind_is_named(self, tmp_path):
        """A plan written by a future schema version (an unknown fault
        kind) is rejected with the offending kind in the message."""
        data = FaultPlan(seed=1).to_dict()
        data["quantum_faults"] = [{"node_id": "a", "at_s": 1.0}]
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="quantum_faults"):
            FaultPlan.load(path)

    def test_unexpected_field_names_kind_and_field(self):
        data = FaultPlan(seed=1).to_dict()
        data["crashes"] = [{"node_id": "a", "at_s": 1.0, "rebot_s": 2.0}]
        with pytest.raises(
            ValueError, match=r"crashes\[0\].*rebot_s"
        ):
            FaultPlan.from_dict(data)

    def test_missing_required_field_is_named(self):
        data = FaultPlan(seed=1).to_dict()
        data["sensor_faults"] = [{"noise": 0.5}]
        with pytest.raises(
            ValueError, match=r"sensor_faults\[0\].*node_id"
        ):
            FaultPlan.from_dict(data)

    def test_invalid_field_value_is_located(self):
        data = FaultPlan(seed=1).to_dict()
        data["link_faults"] = [{"loss_rate": 3.0}]
        with pytest.raises(ValueError, match=r"link_faults\[0\]"):
            FaultPlan.from_dict(data)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_dict({"seed": "eleven"})

    def test_non_object_plan_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_dict(["not", "a", "plan"])

    def test_with_data_faults_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="Crash"):
            FaultPlan().with_data_faults(Crash("a", at_s=1.0))


class TestSimulatorTopology:
    def test_connect_refuses_silent_overwrite(self):
        sim, a, b = _pair()
        with pytest.raises(ValueError, match="already linked"):
            sim.connect("a", "b")
        with pytest.raises(ValueError, match="already linked"):
            sim.connect("b", "a")
        sim.connect("a", "b", replace=True)  # explicit swap is fine

    def test_disconnect_drops_but_still_charges_sender(self):
        sim, a, b = _pair()
        energy = []
        a.on_transmit = lambda n, e: energy.append(e)
        sim.disconnect("a", "b")
        a.send(_report())
        sim.run()
        assert b.received == []
        assert sim.dropped_messages == 1
        assert energy and energy[0] > 0  # radio keyed up into the void

    def test_reconnect_restores_delivery(self):
        sim, a, b = _pair()
        sim.disconnect("a", "b")
        sim.reconnect("a", "b")
        a.send(_report())
        sim.run()
        assert len(b.received) == 1

    def test_disconnect_unknown_pair_raises(self):
        sim, a, b = _pair()
        with pytest.raises(KeyError):
            sim.disconnect("a", "zz")
        with pytest.raises(KeyError):
            sim.reconnect("a", "b")  # never severed

    def test_down_recipient_drops_in_flight(self):
        sim, a, b = _pair()
        a.send(_report())
        sim.set_node_down("b")
        sim.run()
        assert b.received == []
        assert sim.dropped_messages == 1

    def test_down_sender_spends_no_energy(self):
        sim, a, b = _pair()
        energy = []
        a.on_transmit = lambda n, e: energy.append(e)
        sim.set_node_down("a")
        a.send(_report())
        sim.run()
        assert energy == []
        assert sim.dropped_messages == 1
        sim.set_node_up("a")
        a.send(_report())
        sim.run()
        assert len(b.received) == 1


class TestInjector:
    def test_seeded_loss_is_deterministic(self):
        def run(seed):
            sim, a, b = _pair()
            injector = FaultInjector(FaultPlan.uniform_loss(0.5, seed=seed))
            injector.attach(sim)
            for i in range(40):
                a.send(_report(float(i)))
            sim.run()
            return [m.residual_joules for m in b.received]

        assert run(1) == run(1)
        assert run(1) != run(2)
        assert 0 < len(run(1)) < 40

    def test_empty_plan_never_touches_rng_or_drops(self):
        sim, a, b = _pair()
        injector = FaultInjector(FaultPlan(seed=9))
        injector.attach(sim)
        state_before = injector.rng.bit_generator.state
        for i in range(10):
            a.send(_report(float(i)))
        sim.run()
        assert len(b.received) == 10
        assert sim.dropped_messages == 0
        assert injector.rng.bit_generator.state == state_before

    def test_latency_spike_delays_delivery(self):
        sim, a, b = _pair()
        injector = FaultInjector(
            FaultPlan(link_faults=(LinkFault(extra_latency_s=3.0),))
        )
        injector.attach(sim)
        a.send(_report())
        sim.run()
        assert len(b.received) == 1
        assert sim.now >= 3.0

    def test_partition_window(self):
        sim, a, b = _pair()
        injector = FaultInjector(
            FaultPlan(partitions=(Partition("a", "b", 1.0, 2.0),))
        )
        injector.attach(sim)
        sim.schedule(1.5, lambda: a.send(_report(1.0)))
        sim.schedule(2.5, lambda: a.send(_report(2.0)))
        sim.run()
        assert [m.residual_joules for m in b.received] == [2.0]
        kinds = [e.kind for e in injector.log.faults]
        assert "link_partition" in kinds
        assert [e.kind for e in injector.log.recoveries] == ["link_restored"]

    def test_crash_and_reboot_events(self):
        sim, a, b = _pair()
        injector = FaultInjector(
            FaultPlan(crashes=(Crash("b", at_s=1.0, reboot_s=2.0),))
        )
        injector.attach(sim)
        sim.schedule(1.5, lambda: a.send(_report(1.0)))
        sim.schedule(2.5, lambda: a.send(_report(2.0)))
        sim.run()
        assert [m.residual_joules for m in b.received] == [2.0]
        assert [e.kind for e in injector.log.faults] == ["node_crash"]
        assert [e.kind for e in injector.log.recoveries] == ["node_reboot"]

    def test_double_attach_rejected(self):
        sim, _, _ = _pair()
        injector = FaultInjector(FaultPlan())
        injector.attach(sim)
        with pytest.raises(RuntimeError):
            injector.attach(sim)


class TestBatteryHardening:
    def test_overdraw_clamps_at_zero(self):
        battery = Battery(capacity_joules=10.0)
        assert battery.draw(25.0) == 10.0
        assert battery.residual == 0.0
        assert battery.is_depleted
        assert battery.draw(5.0) == 0.0
        assert battery.residual == 0.0

    def test_deplete(self):
        battery = Battery(capacity_joules=7.0)
        assert battery.deplete() == 7.0
        assert battery.is_depleted


def _camera(observations, battery=None, **kwargs):
    from repro.detection.detectors import make_detector_suite
    from repro.world.environment import LAB

    return CameraSensorNode(
        node_id=kwargs.pop("node_id", "cam"),
        controller_id="sink",
        observations=observations,
        detectors=make_detector_suite(LAB),
        thresholds={"HOG": 0.5, "ACF": 2.0},
        energy_model=ProcessingEnergyModel(width=360, height=288),
        battery=battery,
        **kwargs,
    )


class TestCameraFaultBehaviour:
    @pytest.fixture()
    def wired(self, dataset1):
        records = dataset1.frames(0, 100, only_ground_truth=True)
        observations = [
            r.observation(dataset1.camera_ids[0]) for r in records
        ]
        sim = EventSimulator()
        sink = Recorder("sink")
        camera = _camera(observations, battery=Battery(capacity_joules=3.0))
        sim.register_node(sink)
        sim.register_node(camera)
        sim.connect("cam", "sink")
        return sim, sink, camera

    def test_default_rng_derived_from_node_id(self, dataset1):
        records = dataset1.frames(0, 50, only_ground_truth=True)
        obs = [r.observation(dataset1.camera_ids[0]) for r in records]
        cam_a = _camera(obs, node_id="cam-a")
        cam_b = _camera(obs, node_id="cam-b")
        # Two unconfigured nodes must not share one stream.
        draws_a = cam_a.rng.uniform(0, 1, 4)
        draws_b = cam_b.rng.uniform(0, 1, 4)
        assert not np.array_equal(draws_a, draws_b)
        # And the default is reproducible per node id.
        again = _camera(obs, node_id="cam-a")
        assert np.array_equal(
            again.rng.uniform(0, 1, 4),
            np.random.default_rng(node_seed("cam-a")).uniform(0, 1, 4),
        )

    def test_depleted_camera_stops_processing_and_transmitting(self, wired):
        sim, sink, camera = wired
        camera.active_algorithm = "HOG"
        for _ in range(20):  # 3 J battery dies within a few HOG frames
            if not camera.process_next_frame():
                break
        assert camera.battery.is_depleted
        frames_before = camera.frames_processed
        assert not camera.process_next_frame()
        assert camera.frames_processed == frames_before
        sent_before = sim.transferred_bytes + len(sink.received)
        camera.report_energy()
        sim.run()
        assert camera.suppressed_sends > 0
        # Nothing new left the radio after depletion.
        metadata = [m for m in sink.received if m.kind == "EnergyReport"]
        assert metadata == []

    def test_crashed_camera_ignores_messages(self, wired):
        sim, sink, camera = wired
        camera.crash()
        from repro.network.messages import AlgorithmAssignment

        camera.receive(AlgorithmAssignment(
            sender="sink", recipient="cam", algorithm="HOG",
        ))
        assert camera.active_algorithm is None
        assert not camera.process_next_frame()

    def test_reboot_reports_energy(self, dataset1):
        records = dataset1.frames(0, 100, only_ground_truth=True)
        observations = [
            r.observation(dataset1.camera_ids[0]) for r in records
        ]
        sim = EventSimulator()
        sink = Recorder("sink")
        camera = _camera(observations)
        sim.register_node(sink)
        sim.register_node(camera)
        sim.connect("cam", "sink")
        camera.crash()
        camera.reboot()
        sim.run()
        assert [m.kind for m in sink.received] == ["EnergyReport"]


class TestZeroFaultDeterminism:
    """Regression: the fault subsystem must not perturb clean runs.

    The pinned constants are the pre-fault-PR outputs of the same
    seeds; any drift here means zero-fault behaviour changed.
    """

    def test_runner_outputs_bit_identical(self, runner1):
        result = runner1.run(mode="full", budget=2.0, start=1000, end=2000)
        assert result.humans_detected == 215
        assert result.humans_present == 240
        assert result.frames_evaluated == 40
        assert repr(result.energy_joules) == "125.64065924651223"
        assert repr(result.processing_joules) == "125.58974724651219"
        assert repr(result.communication_joules) == "0.050912"
        assert repr(result.mean_fused_probability) == "0.45893564808749976"

    def test_networked_round_bit_identical(self, runner1, dataset1):
        records = dataset1.frames(1000, 1200, only_ground_truth=True)
        env = dataset1.environment
        model = ProcessingEnergyModel(width=env.width, height=env.height)
        sim = EventSimulator()
        controller_node = ControllerNode(
            "ctrl", runner1.controller, assessment_frames=2, budget=2.0
        )
        sim.register_node(controller_node)
        nodes = {}
        for camera_id in dataset1.camera_ids:
            item = runner1.library.get(f"T-{camera_id}")
            node = CameraSensorNode(
                node_id=camera_id,
                controller_id="ctrl",
                observations=[r.observation(camera_id) for r in records],
                detectors=runner1.detectors,
                thresholds={
                    n: p.threshold for n, p in item.profiles.items()
                },
                energy_model=model,
                rng=np.random.default_rng(1),
            )
            nodes[camera_id] = node
            sim.register_node(node)
            sim.connect(camera_id, "ctrl")
            node.start()
        sim.run()
        controller_node.start_assessment(
            {c: ["HOG", "ACF"] for c in dataset1.camera_ids}
        )
        sim.run()
        assert sim.delivered_messages == 28
        assert sim.dropped_messages == 0
        assert sim.transferred_bytes == 11804
        assert repr(sim.now) == "0.020536"
        assert controller_node.decisions[0].assignment == {
            "lab-cam1": "HOG", "lab-cam3": "HOG", "lab-cam4": "HOG",
        }
        assert {
            c: repr(n.battery.consumed) for c, n in nodes.items()
        } == {
            "lab-cam1": "2.304408389209978",
            "lab-cam2": "2.303376389209978",
            "lab-cam3": "2.304408389209978",
            "lab-cam4": "2.304150389209978",
        }


class TestControllerLivenessAndReselection:
    def test_crash_triggers_dead_mark_and_reselection(self, runner1):
        from repro.experiments.faults import ChaosSpec, run_chaos

        spec = ChaosSpec(crash_count=1, num_frames=10)
        result = run_chaos(spec, runner1)
        kinds = result.fault_kinds()
        assert "node_crash" in kinds
        assert "camera_marked_dead" in kinds
        assert "reselected" in [e.kind for e in result.recovery_events]
        assert result.num_decisions >= 2
        crashed = runner1.dataset.camera_ids[0]
        assert crashed not in result.final_assignment
        # The shared runner's controller was not touched.
        assert runner1.controller.alive_camera_ids == (
            runner1.controller.camera_ids
        )

    def test_lossy_run_retransmits_and_charges_energy(self, runner1):
        from repro.experiments.faults import ChaosSpec, run_chaos

        clean = run_chaos(ChaosSpec(num_frames=8), runner1)
        lossy = run_chaos(ChaosSpec(loss_rate=0.25, num_frames=8), runner1)
        assert clean.retransmissions == 0
        assert clean.dropped_messages == 0
        assert lossy.retransmissions > 0
        assert lossy.dropped_messages > 0
        # Retransmissions cost the senders real Joules: some camera
        # paid more for its radio than in the clean run.
        deltas = [
            lossy.battery_by_camera[c] - clean.battery_by_camera[c]
            for c in clean.battery_by_camera
        ]
        assert max(deltas) > 0

    def test_chaos_run_is_deterministic(self, runner1):
        from repro.experiments.faults import ChaosSpec, run_chaos

        spec = ChaosSpec(loss_rate=0.2, crash_count=1, num_frames=8)
        first = run_chaos(spec, runner1)
        second = run_chaos(spec, runner1)
        assert first.humans_detected == second.humans_detected
        assert first.battery_by_camera == second.battery_by_camera
        assert first.fault_kinds() == second.fault_kinds()
        assert first.delivered_messages == second.delivered_messages

    def test_heartbeat_revives_marked_dead_camera(self, runner1):
        from repro.experiments.faults import ChaosSpec, run_chaos

        spec = ChaosSpec(crash_count=1, reboot_s=25.0, num_frames=12)
        result = run_chaos(spec, runner1)
        recovery_kinds = [e.kind for e in result.recovery_events]
        assert "node_reboot" in recovery_kinds
        assert "camera_marked_alive" in recovery_kinds
        # Re-selection ran at least twice: at death and at revival.
        assert recovery_kinds.count("reselected") >= 2

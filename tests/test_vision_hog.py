"""Tests for the HOG descriptor."""

import numpy as np
import pytest

from repro.vision.hog import HOG_DIM, hog_descriptor


class TestHogDescriptor:
    def test_canonical_dimension(self, rng):
        img = rng.uniform(size=(120, 160))
        desc = hog_descriptor(img)
        assert desc.shape == (HOG_DIM,)
        assert HOG_DIM == 3780  # the paper's frame feature size

    def test_non_negative(self, rng):
        desc = hog_descriptor(rng.uniform(size=(64, 64)))
        assert np.all(desc >= 0)

    def test_l2_hys_clipping(self, rng):
        desc = hog_descriptor(rng.uniform(size=(64, 64)))
        # After clipping at 0.2 and renormalising, entries stay modest.
        assert desc.max() <= 0.3

    def test_constant_image_is_zero_safe(self):
        desc = hog_descriptor(np.full((64, 128), 0.5))
        assert np.all(np.isfinite(desc))
        np.testing.assert_allclose(desc, 0.0, atol=1e-6)

    def test_deterministic(self, rng):
        img = rng.uniform(size=(80, 100))
        np.testing.assert_array_equal(hog_descriptor(img), hog_descriptor(img))

    def test_vertical_vs_horizontal_edges_differ(self):
        vert = np.zeros((64, 128))
        vert[:, 32:] = 1.0
        horiz = np.zeros((64, 128))
        horiz[32:, :] = 1.0
        d_v = hog_descriptor(vert, resize=False)
        d_h = hog_descriptor(horiz, resize=False)
        assert np.linalg.norm(d_v - d_h) > 0.5

    def test_brightness_invariance(self, rng):
        img = rng.uniform(size=(64, 64))
        d1 = hog_descriptor(img)
        d2 = hog_descriptor(img * 0.5)  # gradients scale, blocks renormalise
        np.testing.assert_allclose(d1, d2, atol=1e-6)

    def test_rejects_tiny_image_without_resize(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.zeros((4, 4)), resize=False)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.zeros((8, 8, 3)))

    def test_similar_images_have_similar_descriptors(self, rng):
        img = rng.uniform(size=(96, 128))
        noisy = np.clip(img + rng.normal(scale=0.01, size=img.shape), 0, 1)
        other = rng.uniform(size=(96, 128))
        d = hog_descriptor(img)
        assert np.linalg.norm(d - hog_descriptor(noisy)) < np.linalg.norm(
            d - hog_descriptor(other)
        )

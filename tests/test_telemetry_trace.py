"""Tracer span trees, the TimingReport adapter, and event logs."""

import pytest

from repro.perf.timing import TimingReport
from repro.telemetry.events import EventLog, fault_log_sink
from repro.telemetry.schema import (
    SchemaError,
    validate_events_file,
    validate_trace_file,
)
from repro.telemetry.trace import Tracer, TracingTimingReport


def _fake_clock():
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tr = Tracer(run_id="t")
        run = tr.begin("run")
        rnd = tr.begin("round")
        op = tr.begin("camera_op")
        assert run.parent_id is None
        assert rnd.parent_id == run.span_id
        assert op.parent_id == rnd.span_id
        tr.end(op)
        sibling = tr.begin("camera_op")
        assert sibling.parent_id == rnd.span_id

    def test_end_closes_deeper_open_spans(self):
        tr = Tracer()
        run = tr.begin("run")
        inner = tr.begin("phase")
        tr.end(run)
        assert inner.end_s is not None
        assert tr.open_spans == 0

    def test_end_is_idempotent(self):
        tr = Tracer(clock=_fake_clock())
        span = tr.begin("s")
        tr.end(span)
        first_end = span.end_s
        tr.end(span)
        assert span.end_s == first_end

    def test_context_manager_closes_dangling_children(self):
        tr = Tracer()
        with tr.span("outer", mode="full"):
            dangling = tr.begin("dangling")
        # Ending the outer span sweeps up the unclosed child.
        assert tr.open_spans == 0
        assert dangling.end_s is not None

    def test_finish_closes_everything(self):
        tr = Tracer()
        tr.begin("run")
        tr.begin("round")
        tr.finish()
        assert tr.open_spans == 0
        assert all(s.end_s is not None for s in tr.spans)

    def test_write_jsonl_validates(self, tmp_path):
        tr = Tracer(run_id="t")
        with tr.span("run"):
            with tr.span("round", index=0):
                pass
        path = tmp_path / "trace.jsonl"
        assert tr.write_jsonl(path) == 2
        assert validate_trace_file(path) == 2

    def test_dangling_parent_reference_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"schema": "repro.span.v1", "run_id": "", "span_id": 1, '
            '"parent_id": 99, "name": "x", "start_s": 0.0, '
            '"duration_s": 0.0, "attributes": {}}\n'
        )
        with pytest.raises(SchemaError):
            validate_trace_file(path)


class TestTimingInterop:
    def test_tracing_report_keeps_aggregates_and_emits_spans(self):
        tr = Tracer()
        report = TracingTimingReport(tr)
        with report.section("assessment"):
            with report.section("detection"):
                pass
        stats = dict(report.items())
        assert stats["assessment"].calls == 1
        assert stats["detection"].calls == 1
        by_name = {s.name: s for s in tr.spans}
        assert by_name["detection"].parent_id == (
            by_name["assessment"].span_id
        )

    def test_to_timing_report_aggregates_by_name(self):
        tr = Tracer(clock=_fake_clock())
        for _ in range(3):
            with tr.span("phase"):
                pass
        report = tr.to_timing_report()
        stats = dict(report.items())["phase"]
        assert stats.calls == 3
        assert stats.total_seconds == pytest.approx(3.0)

    def test_absorb_timing_uses_public_items(self):
        legacy = TimingReport()
        legacy.record("selection", 2.0)
        legacy.record("selection", 3.0)
        tr = Tracer()
        tr.absorb_timing(legacy)
        (span,) = tr.spans
        assert span.name == "selection"
        assert span.duration_s == pytest.approx(5.0)
        assert span.attributes["calls"] == 2

    def test_merge_goes_through_items_copies(self):
        # The satellite fix: merge() consumes the public items() view,
        # which yields copies — mutating a merged-from report later
        # must not leak into the merged-into one.
        a, b = TimingReport(), TimingReport()
        b.record("phase", 1.0)
        a.merge(b)
        b.record("phase", 1.0)
        assert dict(a.items())["phase"].total_seconds == 1.0
        assert dict(b.items())["phase"].total_seconds == 2.0


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog(run_id="r")
        log.emit("node_crash", time_s=1.0, node_id="cam1")
        log.emit("reselected", time_s=2.0, node_id="ctrl", reason="x")
        assert log.kinds() == ["node_crash", "reselected"]
        (crash,) = log.by_kind("node_crash")
        assert crash.node_id == "cam1"

    def test_write_jsonl_validates(self, tmp_path):
        log = EventLog(run_id="r")
        log.emit("battery_threshold", time_s=3.0, node_id="cam2",
                 threshold=0.5)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 1
        assert validate_events_file(path) == 1

    def test_fault_log_sink_mirrors_fault_events(self):
        from repro.faults.events import FaultLog

        log = EventLog()
        fault_log = FaultLog(sink=fault_log_sink(log))
        fault_log.fault(1.5, "node_crash", "cam1", "power loss")
        fault_log.recovery(2.5, "node_reboot", "cam1")
        assert log.kinds() == ["node_crash", "node_reboot"]
        (crash, reboot) = log.events
        assert crash.time_s == 1.5
        assert crash.detail["note"] == "power loss"
        assert reboot.node_id == "cam1"

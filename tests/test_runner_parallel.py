"""Parallel execution must reproduce serial results exactly.

Every detection task seeds its own generator from the run entropy plus
its (frame, camera, algorithm) coordinates, so the worker fan-out is
order-independent by construction; these tests pin that guarantee.
"""

import numpy as np
import pytest

from repro.experiments.harness import RunSpec, run_specs


def _fingerprint(result):
    return (
        result.humans_detected,
        result.humans_present,
        result.energy_joules,
        result.processing_joules,
        result.communication_joules,
        result.mean_fused_probability,
        result.processing_seconds,
        tuple(sorted(result.energy_by_camera.items())),
        tuple(tuple(sorted(d.assignment.items())) for d in result.decisions),
    )


class TestRunnerWorkers:
    @pytest.mark.parametrize("mode", ["full", "all_best"])
    def test_workers_match_serial(self, runner1, mode):
        serial = runner1.run(mode=mode, budget=2.0, start=1000, end=1300)
        parallel = runner1.run(
            mode=mode, budget=2.0, start=1000, end=1300, workers=2
        )
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_fixed_mode_workers_match_serial(self, runner1):
        cameras = runner1.dataset.camera_ids[:2]
        assignment = {camera_id: "HOG" for camera_id in cameras}
        serial = runner1.run(
            mode="fixed", assignment=assignment, start=1000, end=1300
        )
        parallel = runner1.run(
            mode="fixed",
            assignment=assignment,
            start=1000,
            end=1300,
            workers=3,
        )
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_repeated_serial_runs_stable(self, runner1):
        a = runner1.run(mode="full", budget=2.0, start=1000, end=1300)
        b = runner1.run(mode="full", budget=2.0, start=1000, end=1300)
        assert _fingerprint(a) == _fingerprint(b)

    def test_timing_sections_populated(self, runner1):
        runner1.run(mode="full", budget=2.0, start=1000, end=1300)
        sections = runner1.timing.sections
        assert "detection" in sections
        assert "selection" in sections
        assert sections["detection"].calls > 0
        assert sections["detection"].total_seconds > 0.0


class TestHarnessWorkers:
    def test_run_specs_parallel_matches_serial(self):
        specs = [
            RunSpec(
                dataset_number=1,
                mode="full",
                budget=2.0,
                start=1000,
                end=1300,
            ),
            RunSpec(
                dataset_number=1,
                mode="all_best",
                budget=2.0,
                start=1000,
                end=1300,
            ),
        ]
        serial = run_specs(specs, workers=1)
        parallel = run_specs(specs, workers=2)
        assert [r.mode for r in serial] == ["full", "all_best"]
        for a, b in zip(serial, parallel):
            assert _fingerprint(a) == _fingerprint(b)

    def test_fixed_spec_assignment_roundtrip(self):
        spec = RunSpec(
            dataset_number=1,
            mode="fixed",
            start=1000,
            end=1200,
            assignment=(("lab-cam1", "HOG"),),
        )
        results = run_specs([spec], workers=1)
        assert len(results) == 1
        assert results[0].mode == "fixed"


class TestPerCameraDeterminism:
    def test_entropy_depends_on_coordinates(self, runner1):
        records = runner1.dataset.frames(1000, 1011, only_ground_truth=True)
        cameras = runner1.dataset.camera_ids
        e1 = runner1._task_entropy(records[0], cameras[0], "HOG")
        e2 = runner1._task_entropy(records[0], cameras[1], "HOG")
        e3 = runner1._task_entropy(records[0], cameras[0], "ACF")
        assert len({e1, e2, e3}) == 3

    def test_task_rng_reproducible(self, runner1):
        record = runner1.dataset.frames(1000, 1001)[0]
        camera_id = runner1.dataset.camera_ids[0]
        entropy = runner1._task_entropy(record, camera_id, "HOG")
        a = np.random.default_rng(list(entropy)).normal(size=4)
        b = np.random.default_rng(list(entropy)).normal(size=4)
        np.testing.assert_array_equal(a, b)

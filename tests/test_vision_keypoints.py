"""Tests for keypoint detection and SURF-style descriptors."""

import numpy as np
import pytest

from repro.vision.keypoints import (
    DESCRIPTOR_DIM,
    detect_keypoints,
    extract_descriptors,
    hessian_response,
)


def blob_image(centers, size=64, radius=3.0):
    """Gaussian blobs at given centres."""
    ys, xs = np.mgrid[0:size, 0:size]
    img = np.zeros((size, size))
    for (cy, cx) in centers:
        img += np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * radius**2))
    return img


class TestDetectKeypoints:
    def test_finds_blobs(self):
        centers = [(16, 16), (48, 48), (16, 48)]
        kps = detect_keypoints(blob_image(centers), max_keypoints=10)
        assert len(kps) >= 3
        found = {
            min(centers, key=lambda c: (kp.y - c[0]) ** 2 + (kp.x - c[1]) ** 2)
            for kp in kps[:3]
        }
        assert len(found) == 3

    def test_respects_max_keypoints(self, rng):
        img = rng.uniform(size=(80, 80))
        kps = detect_keypoints(img, max_keypoints=5)
        assert len(kps) <= 5

    def test_sorted_by_response(self, rng):
        img = rng.uniform(size=(80, 80))
        kps = detect_keypoints(img, max_keypoints=20)
        responses = [kp.response for kp in kps]
        assert responses == sorted(responses, reverse=True)

    def test_empty_on_constant_image(self):
        kps = detect_keypoints(np.full((40, 40), 0.5))
        assert kps == []

    def test_keypoints_away_from_border(self):
        kps = detect_keypoints(blob_image([(32, 32)]), max_keypoints=50)
        for kp in kps:
            assert 6 <= kp.x <= 57
            assert 6 <= kp.y <= 57


class TestHessianResponse:
    def test_peak_at_blob_center(self):
        img = blob_image([(32, 32)])
        resp = np.abs(hessian_response(img))
        peak = np.unravel_index(np.argmax(resp), resp.shape)
        assert abs(peak[0] - 32) <= 2
        assert abs(peak[1] - 32) <= 2


class TestDescriptors:
    def test_shape(self, rng):
        img = rng.uniform(size=(64, 64))
        descs = extract_descriptors(img, max_keypoints=10)
        assert descs.shape[1] == DESCRIPTOR_DIM
        assert DESCRIPTOR_DIM == 64  # SURF's descriptor size

    def test_unit_norm(self, rng):
        img = rng.uniform(size=(64, 64))
        descs = extract_descriptors(img, max_keypoints=10)
        for d in descs:
            assert np.linalg.norm(d) == pytest.approx(1.0, abs=1e-6)

    def test_empty_for_flat_image(self):
        descs = extract_descriptors(np.zeros((40, 40)))
        assert descs.shape == (0, DESCRIPTOR_DIM)

    def test_deterministic(self, rng):
        img = rng.uniform(size=(64, 64))
        np.testing.assert_array_equal(
            extract_descriptors(img), extract_descriptors(img)
        )

"""Tests for the calibrated simulated detectors."""

import numpy as np
import pytest

from repro.datasets.groundtruth import ground_truth_boxes
from repro.detection.detectors import (
    ALGORITHM_NAMES,
    make_detector,
    make_detector_suite,
)
from repro.detection.metrics import precision_recall
from repro.detection.profiles import get_profile
from repro.world.environment import CHAP, LAB
from repro.world.renderer import Renderer
from repro.world.scene import Scene, make_camera_ring


@pytest.fixture(scope="module")
def lab_frames():
    scene = Scene(LAB, num_people=6, seed=5)
    camera = make_camera_ring(LAB, num_cameras=1)[0]
    renderer = Renderer(scene, camera)
    frames = []
    for i in range(200):
        scene.step()
        if i % 10 == 0:
            frames.append(renderer.render())
    return frames


class TestDetectorConstruction:
    def test_suite_has_all_algorithms(self):
        suite = make_detector_suite(LAB)
        assert set(suite) == set(ALGORITHM_NAMES)

    def test_calibration_exposed(self):
        det = make_detector("HOG", LAB)
        cal = det.calibration
        assert {"tp_mu", "fp_loc", "fp_count", "sigma"} <= set(cal)

    def test_tp_mean_above_threshold_minus_sigma(self):
        """The clean-object response sits near the threshold region."""
        det = make_detector("LSVM", LAB)
        profile = get_profile("LSVM", LAB.family)
        assert det.calibration["tp_mu"] > profile.threshold

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            make_detector("YOLO", LAB)


class TestDetectorBehaviour:
    def test_detections_carry_camera_and_frame(self, lab_frames, rng):
        det = make_detector("HOG", LAB)
        out = det.detect(lab_frames[0], rng)
        for d in out:
            assert d.camera_id == lab_frames[0].camera_id
            assert d.frame_index == lab_frames[0].frame_index
            assert d.algorithm == "HOG"

    def test_threshold_filters(self, lab_frames, rng):
        det = make_detector("HOG", LAB)
        all_dets = det.detect(lab_frames[0], np.random.default_rng(1))
        cut = det.detect(
            lab_frames[0], np.random.default_rng(1), threshold=0.5
        )
        assert len(cut) <= len(all_dets)
        assert all(d.score >= 0.5 for d in cut)

    def test_sorted_by_score(self, lab_frames, rng):
        det = make_detector("ACF", LAB)
        out = det.detect(lab_frames[0], rng)
        scores = [d.score for d in out]
        assert scores == sorted(scores, reverse=True)

    def test_occlusion_lowers_score(self, rng):
        det = make_detector("HOG", LAB)
        from repro.world.renderer import ObjectView

        base = dict(
            person_id=0, bbox=(10, 10, 30, 90), pixel_height=90,
            contrast=0.8, distance=5.0, shade=0.4, ground_xy=(1, 1),
        )
        clear = ObjectView(occlusion=0.0, **base)
        hidden = ObjectView(occlusion=0.9, **base)
        clear_scores = [
            det.score_view(clear, np.random.default_rng(s)) for s in range(50)
        ]
        hidden_scores = [
            det.score_view(hidden, np.random.default_rng(s)) for s in range(50)
        ]
        assert np.mean(clear_scores) > np.mean(hidden_scores)

    def test_operating_point_near_profile(self, lab_frames):
        """At the profile threshold, measured P/R sit near targets."""
        rng = np.random.default_rng(3)
        for algorithm in ("HOG", "LSVM"):
            det = make_detector(algorithm, LAB)
            profile = det.profile
            frames = [
                (det.detect(obs, rng), ground_truth_boxes(obs))
                for obs in lab_frames
            ]
            counts = precision_recall(frames, profile.threshold)
            assert counts.recall == pytest.approx(profile.recall, abs=0.15)
            assert counts.precision == pytest.approx(
                profile.precision, abs=0.15
            )

    def test_cluttered_scene_has_more_false_positives(self, rng):
        lab_det = make_detector("HOG", LAB)
        chap_det = make_detector("HOG", CHAP)
        assert (
            chap_det.calibration["conf_count"]
            > lab_det.calibration["conf_count"]
        )

    def test_false_positives_have_no_truth_id(self, lab_frames, rng):
        det = make_detector("HOG", LAB)
        out = det.detect(lab_frames[0], rng)
        truth_ids = {v.person_id for v in lab_frames[0].objects}
        for d in out:
            if d.truth_id is not None:
                assert d.truth_id in truth_ids


class TestProfiles:
    def test_all_combinations_registered(self):
        for algorithm in ALGORITHM_NAMES:
            for family in ("indoor_clean", "indoor_cluttered", "outdoor"):
                profile = get_profile(algorithm, family)
                assert profile.algorithm == algorithm
                assert profile.family == family

    def test_unknown_combination_raises(self):
        with pytest.raises(KeyError):
            get_profile("HOG", "lunar")

    def test_f_score_consistent(self):
        p = get_profile("LSVM", "indoor_clean")
        expected = 2 * p.recall * p.precision / (p.recall + p.precision)
        assert p.f_score == pytest.approx(expected)

    def test_paper_orderings(self):
        """Who wins where, per Tables II-III."""
        def f(alg, fam):
            return get_profile(alg, fam).f_score

        # Dataset #1: LSVM > HOG > C4 > ACF.
        assert f("LSVM", "indoor_clean") > f("HOG", "indoor_clean")
        assert f("HOG", "indoor_clean") > f("C4", "indoor_clean")
        assert f("C4", "indoor_clean") > f("ACF", "indoor_clean")
        # Dataset #2: ACF > LSVM > C4 > HOG.
        assert f("ACF", "indoor_cluttered") > f("LSVM", "indoor_cluttered")
        assert f("C4", "indoor_cluttered") > f("HOG", "indoor_cluttered")

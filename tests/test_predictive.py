"""The predictive wake-up layer and policy.

Contract under test, in layer order:

* ``repro.predictive`` — RLS regressors learn, snapshot/restore is
  exact (pure-Python floats survive JSON), config validation fails
  fast;
* policy registration — ``predictive`` shares ``subset``'s entropy
  stream, and a warmup longer than the run reproduces ``subset``
  **bit for bit**;
* the wake gate — skipping saves energy, rationing caps concurrent
  sleepers, quorum never sleeps the whole fleet, and every decision
  is auditable through ``camera_wake``/``camera_skip`` events;
* checkpointing — kill-and-resume with live regressor state finishes
  bit-identically, and a resume under different wake tunables is
  refused;
* spec/CLI validation — predictive tunables without the predictive
  policy are an error at construction.
"""

import json

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    RunCheckpointer,
    SimulatedCrash,
)
from repro.checkpoint.codec import run_result_to_dict
from repro.core.config import EECSConfig
from repro.engine import (
    DeploymentEngine,
    DeploymentSpec,
    available_policies,
    resolve_policy,
    shared_context,
)
from repro.engine.predictive import PredictivePolicy
from repro.predictive import (
    ActivityPredictor,
    PredictiveConfig,
    PredictorBank,
    RecursiveLeastSquares,
    camera_activity,
)
from repro.telemetry import Telemetry

#: Short rounds so warmup, probing and rationing all cycle within a
#: sub-second dataset-1 window.
CONFIG = EECSConfig(assessment_period=50, recalibration_interval=100)
WINDOW = dict(start=1000, end=1600)  # 6 rounds
#: Above every camera's observed activity: with this threshold every
#: warmed-up camera wants to sleep, so rationing/probing/quorum fully
#: govern the schedule.
SLEEPY = dict(wake_threshold=9.0, predictor_warmup=2, probe_every=4)


@pytest.fixture(scope="module")
def context():
    return shared_context(1, config=CONFIG)


def run_predictive(context, wake: PredictiveConfig, telemetry=None):
    engine = DeploymentEngine(context, seed=2017, telemetry=telemetry)
    try:
        return engine.run(
            PredictivePolicy(wake), budget=2.0, **WINDOW
        )
    finally:
        engine.close()


# ----------------------------------------------------------------------
# repro.predictive: regressors
# ----------------------------------------------------------------------
class TestRecursiveLeastSquares:
    def test_learns_a_linear_map(self):
        rls = RecursiveLeastSquares(3, forgetting=1.0)
        target = [1.0, 2.0, -0.5]
        for i in range(200):
            x = [1.0, (i % 7) / 7.0, (i % 11) / 11.0]
            y = sum(w * f for w, f in zip(target, x))
            rls.update(x, y)
        probe = [1.0, 0.3, 0.6]
        want = sum(w * f for w, f in zip(target, probe))
        # The delta*I prior leaves a small regularization bias.
        assert rls.predict(probe) == pytest.approx(want, abs=0.01)

    def test_snapshot_restore_is_exact_through_json(self):
        rls = RecursiveLeastSquares(3, forgetting=0.9, seed=7)
        for i in range(20):
            rls.update([1.0, i / 20.0, (i % 3) / 3.0], float(i % 5))
        state = json.loads(json.dumps(rls.snapshot()))
        fresh = RecursiveLeastSquares(3, forgetting=0.9)
        fresh.restore(state)
        probe = [1.0, 0.25, 0.75]
        assert fresh.predict(probe) == rls.predict(probe)
        # and they stay in lockstep after further updates
        rls.update(probe, 2.0)
        fresh.update(probe, 2.0)
        assert fresh.predict(probe) == rls.predict(probe)


class TestActivityPredictor:
    def test_warmup_gates_readiness(self):
        predictor = ActivityPredictor(seed=3)
        assert predictor.predict_next() is None
        assert not predictor.ready(2)
        predictor.observe(3.0, 0.8)
        assert not predictor.ready(2)
        predictor.observe(4.0, 0.7)
        assert predictor.ready(2)
        assert predictor.predict_next() >= 0.0

    def test_tracks_a_constant_signal(self):
        predictor = ActivityPredictor(seed=3)
        for _ in range(30):
            predictor.observe(5.0, 0.9)
        assert predictor.predict_next() == pytest.approx(5.0, abs=0.1)

    def test_bank_snapshot_round_trips_per_camera(self):
        bank = PredictorBank(["a", "b"], seed=11)
        for i in range(5):
            bank.predictor("a").observe(float(i), 0.5)
        bank.predictor("b").observe(2.0, 0.9)
        state = json.loads(json.dumps(bank.snapshot()))
        assert set(state) == {"a", "b"}
        fresh = PredictorBank(["a", "b"], seed=11)
        fresh.restore(state)
        for camera in ("a", "b"):
            assert fresh.predictor(camera).predict_next() == (
                bank.predictor(camera).predict_next()
            )

    def test_seeds_differ_per_camera(self):
        bank = PredictorBank(["a", "b"], seed=11)
        assert bank.predictor("a").snapshot() != (
            bank.predictor("b").snapshot()
        )


class TestPredictiveConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(wake_threshold=-0.1),
            dict(predictor_warmup=0),
            dict(probe_every=0),
            dict(max_sleepers=0),
            dict(low_energy_below=0.0),
            dict(forgetting=0.0),
            dict(forgetting=1.5),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            PredictiveConfig(**bad)

    def test_from_overrides_zero_spells_uncapped(self):
        assert PredictiveConfig.from_overrides(
            max_sleepers=0
        ).max_sleepers is None
        assert PredictiveConfig.from_overrides().max_sleepers == (
            PredictiveConfig().max_sleepers
        )

    def test_to_dict_is_json_ready(self):
        payload = PredictiveConfig().to_dict()
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# Registration and the subset-equivalence guarantee
# ----------------------------------------------------------------------
class TestRegistration:
    def test_registered(self):
        assert "predictive" in available_policies()
        assert isinstance(
            resolve_policy("predictive"), PredictivePolicy
        )

    def test_shares_subset_entropy_stream(self):
        assert PredictivePolicy.entropy_alias == "subset"
        assert resolve_policy("predictive").entropy_token() == (
            resolve_policy("subset").entropy_token()
        )


class TestWarmupOnlyReproducesSubset:
    def test_bit_identical_modulo_mode(self, context):
        subset = DeploymentSpec(
            dataset_number=1, policy="subset", budget=2.0,
            seed=2017, **WINDOW,
        ).execute(config=CONFIG)
        # A warmup longer than the run never skips: same rng stream,
        # same assessments, same selections — subset, bit for bit.
        predictive = DeploymentSpec(
            dataset_number=1, policy="predictive", budget=2.0,
            seed=2017, predictor_warmup=10_000, **WINDOW,
        ).execute(config=CONFIG)
        a = run_result_to_dict(subset)
        b = run_result_to_dict(predictive)
        assert a.pop("mode") == "subset"
        assert b.pop("mode") == "predictive"
        assert a == b


# ----------------------------------------------------------------------
# The wake gate
# ----------------------------------------------------------------------
class TestWakeGate:
    @pytest.fixture(scope="class")
    def sleepy_run(self, context):
        telemetry = Telemetry(run_id="wake")
        result = run_predictive(
            context,
            PredictiveConfig(max_sleepers=1, **SLEEPY),
            telemetry=telemetry,
        )
        return result, telemetry

    def test_skipping_saves_energy(self, context, sleepy_run):
        engine = DeploymentEngine(context, seed=2017)
        try:
            subset = engine.run("subset", budget=2.0, **WINDOW)
        finally:
            engine.close()
        result, _ = sleepy_run
        assert result.energy_joules < subset.energy_joules
        assert result.humans_present == subset.humans_present
        assert result.humans_detected > 0

    def test_every_camera_gets_an_event_every_round(
        self, context, sleepy_run
    ):
        _, telemetry = sleepy_run
        rounds = 6
        cameras = len(context.dataset.camera_ids)
        wakes = telemetry.events.by_kind("camera_wake")
        skips = telemetry.events.by_kind("camera_skip")
        assert len(wakes) + len(skips) == rounds * cameras
        assert skips, "sleepy config never slept"
        assert {e.detail["reason"] for e in skips} == {"predicted_idle"}
        assert {e.detail["reason"] for e in wakes} <= {
            "warmup", "probe", "predicted_active", "rationed", "quorum",
        }
        for event in wakes + skips:
            assert event.node_id in context.dataset.camera_ids
            assert event.detail["threshold"] == 9.0

    def test_warmup_rounds_never_skip(self, sleepy_run):
        _, telemetry = sleepy_run
        skips = telemetry.events.by_kind("camera_skip")
        assert min(e.detail["round"] for e in skips) >= 2

    def test_rationing_caps_concurrent_sleepers(self, sleepy_run):
        _, telemetry = sleepy_run
        by_round: dict[int, int] = {}
        for event in telemetry.events.by_kind("camera_skip"):
            by_round[event.detail["round"]] = (
                by_round.get(event.detail["round"], 0) + 1
            )
        assert by_round, "no round slept"
        assert max(by_round.values()) <= 1
        rationed = [
            e
            for e in telemetry.events.by_kind("camera_wake")
            if e.detail["reason"] == "rationed"
        ]
        assert rationed, "cap never had to ration"

    def test_quorum_rescues_the_last_camera(self, context):
        telemetry = Telemetry(run_id="quorum")
        # Uncapped, never probing: after warmup every camera wants to
        # sleep every round, so quorum must carry the fleet alone.
        run_predictive(
            context,
            PredictiveConfig(
                wake_threshold=9.0,
                predictor_warmup=2,
                probe_every=10_000,
                max_sleepers=None,
            ),
            telemetry=telemetry,
        )
        wakes = telemetry.events.by_kind("camera_wake")
        quorum = [e for e in wakes if e.detail["reason"] == "quorum"]
        assert quorum, "quorum rescue never triggered"
        cameras = len(context.dataset.camera_ids)
        for event in quorum:
            round_index = event.detail["round"]
            awake = [
                e for e in wakes if e.detail["round"] == round_index
            ]
            assert len(awake) == 1
            skips = [
                e
                for e in telemetry.events.by_kind("camera_skip")
                if e.detail["round"] == round_index
            ]
            assert len(skips) == cameras - 1

    def test_low_energy_downgrade_emits_and_saves(self, context):
        telemetry = Telemetry(run_id="cheap")
        # Never sleep (threshold 0) but downgrade everything the
        # regressors consider quiet relative to a huge bar: the
        # PCA-RECT-style companion profile path.
        cheap = run_predictive(
            context,
            PredictiveConfig(
                wake_threshold=0.0,
                predictor_warmup=2,
                low_energy_below=9.0,
            ),
            telemetry=telemetry,
        )
        downgrades = telemetry.events.by_kind("camera_low_energy")
        assert downgrades, "low-energy gate never fired"
        for event in downgrades:
            assert event.detail["algorithm"] != event.detail["previous"]
        engine = DeploymentEngine(context, seed=2017)
        try:
            subset = engine.run("subset", budget=2.0, **WINDOW)
        finally:
            engine.close()
        assert cheap.energy_joules < subset.energy_joules

    def test_observations_come_from_assessments(self, context):
        """The feature extractor reads the same assessment the
        controller ranks — an unassessed camera yields None."""
        from repro.energy.meter import EnergyMeter

        engine = DeploymentEngine(context, seed=2017)
        try:
            records = context.dataset.frames(
                1000, 1100, only_ground_truth=True
            )
            assessment = engine.collect_assessment(
                records[:2], 2.0, EnergyMeter()
            )
        finally:
            engine.close()
        for camera_id in assessment.camera_ids:
            activity, score = camera_activity(assessment, camera_id)
            assert activity >= 0.0
            assert 0.0 <= score <= 1.0
        assert camera_activity(assessment, "no-such-camera") is None


# ----------------------------------------------------------------------
# Checkpoint participation
# ----------------------------------------------------------------------
class TestCheckpointResume:
    SPEC = dict(
        dataset_number=1, policy="predictive", budget=2.0, seed=2017,
        wake_threshold=9.0, predictor_warmup=2, wake_probe_every=4,
        max_sleepers=1, **WINDOW,
    )

    def test_kill_and_resume_is_bit_identical(self, context, tmp_path):
        reference = DeploymentSpec(**self.SPEC).execute(config=CONFIG)
        # Crash after round 2: the checkpoint carries warmed-up
        # regressors and non-zero sleep counters.
        with pytest.raises(SimulatedCrash):
            DeploymentSpec(**self.SPEC).execute(
                config=CONFIG,
                checkpointer=RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=2)
                ),
            )
        resumed = DeploymentSpec(
            **self.SPEC, checkpoint_dir=str(tmp_path), resume=True,
        ).execute(config=CONFIG)
        assert run_result_to_dict(resumed) == run_result_to_dict(
            reference
        )

    def test_resume_under_different_wake_config_is_refused(
        self, tmp_path
    ):
        with pytest.raises(SimulatedCrash):
            DeploymentSpec(**self.SPEC).execute(
                config=CONFIG,
                checkpointer=RunCheckpointer(
                    CheckpointConfig(directory=tmp_path, crash_after=1)
                ),
            )
        retuned = dict(self.SPEC, wake_threshold=1.0)
        with pytest.raises(CheckpointError, match="different run"):
            DeploymentSpec(
                **retuned, checkpoint_dir=str(tmp_path), resume=True,
            ).execute(config=CONFIG)

    def test_policy_snapshot_survives_json(self):
        policy = PredictivePolicy(PredictiveConfig())
        assert policy.snapshot_state() is None  # nothing to save yet
        bank = PredictorBank(["a", "b"], seed=5)
        bank.predictor("a").observe(1.0, 0.5)
        policy._bank = bank
        policy._sleep = {"a": 0, "b": 3}
        state = json.loads(json.dumps(policy.snapshot_state()))
        fresh = PredictivePolicy(PredictiveConfig())
        fresh.restore_state(state)
        assert fresh._sleep == {"a": 0, "b": 3}
        assert fresh._bank.predictor("a").predict_next() == (
            bank.predictor("a").predict_next()
        )


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_wake_tunables_require_predictive(self):
        with pytest.raises(ValueError, match="predictive"):
            DeploymentSpec(
                dataset_number=1, policy="subset", wake_threshold=1.0
            )

    def test_bad_wake_config_fails_at_construction(self):
        with pytest.raises(ValueError, match="predictor_warmup"):
            DeploymentSpec(
                dataset_number=1, policy="predictive",
                predictor_warmup=0,
            )

    def test_max_sleepers_zero_spells_uncapped(self):
        spec = DeploymentSpec(
            dataset_number=1, policy="predictive", max_sleepers=0
        )
        assert spec._predictive_config().max_sleepers is None

    def test_cli_flags_require_predictive_mode(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "run", "--dataset", "1", "--mode", "subset",
                "--wake-threshold", "1.0",
            ])

"""Tests for the combined frame-feature pipeline."""

import numpy as np
import pytest

from repro.vision.bow import BagOfWords
from repro.vision.features import (
    FRAME_FEATURE_DIM,
    FrameFeatureExtractor,
    build_vocabulary,
    video_features,
)
from repro.vision.hog import HOG_DIM
from repro.vision.keypoints import DESCRIPTOR_DIM


@pytest.fixture(scope="module")
def fitted_bow():
    rng = np.random.default_rng(4)
    descriptors = rng.normal(size=(400, DESCRIPTOR_DIM))
    return BagOfWords(vocabulary_size=50, rng=rng).fit(descriptors)


class TestFrameFeatureExtractor:
    def test_dimension_combines_hog_and_bow(self, fitted_bow, rng):
        extractor = FrameFeatureExtractor(fitted_bow)
        feature = extractor.extract(rng.uniform(size=(96, 128)))
        assert feature.shape == (HOG_DIM + 50,)
        assert extractor.dim == HOG_DIM + 50

    def test_paper_dimension_with_400_words(self):
        """3780 HOG + 400 BoW = 4180, the paper's 16 KB frame vector."""
        assert FRAME_FEATURE_DIM == 4180

    def test_extract_video_stacks(self, fitted_bow, rng):
        extractor = FrameFeatureExtractor(fitted_bow)
        frames = [rng.uniform(size=(64, 80)) for _ in range(3)]
        stack = extractor.extract_video(frames)
        assert stack.shape == (3, extractor.dim)

    def test_extract_video_rejects_empty(self, fitted_bow):
        with pytest.raises(ValueError):
            FrameFeatureExtractor(fitted_bow).extract_video([])

    def test_video_features_wrapper(self, fitted_bow, rng):
        frames = [rng.uniform(size=(64, 80)) for _ in range(2)]
        stack = video_features(frames, fitted_bow)
        assert stack.shape[0] == 2


class TestBuildVocabulary:
    def test_builds_from_textured_frames(self, rng):
        frames = [rng.uniform(size=(64, 64)) for _ in range(4)]
        bow = build_vocabulary(frames, vocabulary_size=30, rng=rng)
        assert bow.is_fitted
        assert bow.vocabulary.shape == (30, DESCRIPTOR_DIM)

    def test_rejects_featureless_frames(self, rng):
        frames = [np.zeros((40, 40)) for _ in range(3)]
        with pytest.raises(ValueError):
            build_vocabulary(frames, vocabulary_size=10, rng=rng)

    def test_all_empty_error_names_frame_count(self, rng):
        frames = [np.zeros((40, 40)) for _ in range(3)]
        with pytest.raises(ValueError, match="all 3 vocabulary training"):
            build_vocabulary(frames, vocabulary_size=10, rng=rng)

    def test_empty_frame_logs_warning_with_index(self, rng, caplog):
        frames = [
            rng.uniform(size=(64, 64)),
            np.zeros((40, 40)),  # featureless: dropped with a warning
            rng.uniform(size=(64, 64)),
        ]
        with caplog.at_level("WARNING", logger="repro.vision.features"):
            bow = build_vocabulary(frames, vocabulary_size=10, rng=rng)
        assert bow.is_fitted
        messages = [r.getMessage() for r in caplog.records]
        assert any("frame 1" in m for m in messages)

    def test_textured_frames_log_nothing(self, rng, caplog):
        frames = [rng.uniform(size=(64, 64)) for _ in range(2)]
        with caplog.at_level("WARNING", logger="repro.vision.features"):
            build_vocabulary(frames, vocabulary_size=10, rng=rng)
        assert not caplog.records

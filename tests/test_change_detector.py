"""Tests for the environmental change detector."""

import numpy as np
import pytest

from repro.core.change_detector import (
    CusumDetector,
    EnvironmentChangeDetector,
    SceneStatistics,
)


class TestSceneStatistics:
    def test_mean_intensity(self):
        stats = SceneStatistics.from_frame(np.full((10, 10), 0.3))
        assert stats.mean_intensity == pytest.approx(0.3)
        assert stats.edge_energy == pytest.approx(0.0)

    def test_edge_energy_detects_texture(self, rng):
        flat = SceneStatistics.from_frame(np.full((20, 20), 0.5))
        noisy = SceneStatistics.from_frame(rng.uniform(size=(20, 20)))
        assert noisy.edge_energy > flat.edge_energy

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            SceneStatistics.from_frame(np.zeros((0, 0)))


class TestCusum:
    def test_no_alarm_in_control(self, rng):
        detector = CusumDetector(0.0, 1.0, drift=0.5, threshold=8.0)
        fired = [detector.update(v) for v in rng.normal(size=300)]
        assert sum(fired) <= 1  # rare false alarms tolerated

    def test_alarm_on_upward_shift(self, rng):
        detector = CusumDetector(0.0, 1.0)
        for v in rng.normal(size=50):
            detector.update(v)
        fired = False
        for v in rng.normal(loc=3.0, size=30):
            fired = fired or detector.update(v)
        assert fired

    def test_alarm_on_downward_shift(self, rng):
        detector = CusumDetector(0.0, 1.0)
        fired = False
        for v in rng.normal(loc=-3.0, size=30):
            fired = fired or detector.update(v)
        assert fired

    def test_resets_after_alarm(self, rng):
        detector = CusumDetector(0.0, 1.0)
        for v in rng.normal(loc=4.0, size=30):
            if detector.update(v):
                break
        assert detector.statistic == 0.0

    def test_small_drift_absorbed(self):
        detector = CusumDetector(0.0, 1.0, drift=0.5, threshold=8.0)
        # A constant 0.4-sigma offset stays below the drift slack.
        assert not any(detector.update(0.4) for _ in range(500))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CusumDetector(0.0, 0.0)
        with pytest.raises(ValueError):
            CusumDetector(0.0, 1.0, threshold=0.0)


class TestEnvironmentChangeDetector:
    def _frames(self, rng, brightness, n):
        return [
            np.clip(
                brightness + 0.02 * rng.normal(size=(24, 32)), 0, 1
            )
            for _ in range(n)
        ]

    def test_calibration_completes(self, rng):
        detector = EnvironmentChangeDetector(min_calibration_frames=5)
        done = [detector.calibrate(f) for f in self._frames(rng, 0.5, 5)]
        assert done == [False, False, False, False, True]
        assert detector.is_calibrated

    def test_observe_before_calibration_raises(self, rng):
        detector = EnvironmentChangeDetector()
        with pytest.raises(RuntimeError):
            detector.observe(np.zeros((4, 4)))

    def test_calibrate_after_done_raises(self, rng):
        detector = EnvironmentChangeDetector(min_calibration_frames=2)
        for f in self._frames(rng, 0.5, 2):
            detector.calibrate(f)
        with pytest.raises(RuntimeError):
            detector.calibrate(np.zeros((4, 4)))

    def test_stable_scene_no_alarm(self, rng):
        detector = EnvironmentChangeDetector(min_calibration_frames=10)
        for f in self._frames(rng, 0.5, 10):
            detector.calibrate(f)
        alarms = sum(
            detector.observe(f) for f in self._frames(rng, 0.5, 100)
        )
        assert alarms <= 1

    def test_brightness_change_detected(self, rng):
        """Lights dim: the detector fires within a few frames."""
        detector = EnvironmentChangeDetector(min_calibration_frames=10)
        for f in self._frames(rng, 0.7, 10):
            detector.calibrate(f)
        fired_at = None
        for i, f in enumerate(self._frames(rng, 0.3, 40)):
            if detector.observe(f):
                fired_at = i
                break
        assert fired_at is not None
        assert fired_at < 20

    def test_dataset_switch_detected(self, dataset1, dataset2):
        """Swapping the camera from the lab to the chap room fires."""
        detector = EnvironmentChangeDetector(min_calibration_frames=8)
        lab_cam = dataset1.camera_ids[0]
        for record in dataset1.frames(0, 200, only_ground_truth=True):
            if detector.calibrate(record.observation(lab_cam).image):
                break
        chap_cam = dataset2.camera_ids[0]
        fired = False
        for record in dataset2.frames(0, 400, only_ground_truth=True):
            if detector.observe(record.observation(chap_cam).image):
                fired = True
                break
        assert fired

"""Additional property-based tests: NMS, k-means, tracker, energy
model and metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.base import BoundingBox
from repro.energy.model import processing_energy, processing_time
from repro.vision.kmeans import KMeans
from repro.vision.nms import non_max_suppression

box_tuples = st.tuples(
    st.floats(min_value=0, max_value=200),
    st.floats(min_value=0, max_value=200),
    st.floats(min_value=1, max_value=60),
    st.floats(min_value=1, max_value=60),
)


class TestNmsProperties:
    @given(
        st.lists(box_tuples, min_size=1, max_size=25),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_kept_boxes_do_not_overlap_above_threshold(self, raw, iou_t):
        boxes = np.array(raw)
        scores = np.linspace(1.0, 0.1, len(raw))
        keep = non_max_suppression(boxes, scores, iou_t)
        kept = [BoundingBox(*boxes[i]) for i in keep]
        for i in range(len(kept)):
            for j in range(i + 1, len(kept)):
                assert kept[i].iou(kept[j]) <= iou_t + 1e-9

    @given(st.lists(box_tuples, min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_highest_score_always_kept(self, raw):
        boxes = np.array(raw)
        scores = np.arange(len(raw), dtype=float)
        keep = non_max_suppression(boxes, scores, 0.5)
        assert int(np.argmax(scores)) in keep

    @given(st.lists(box_tuples, min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_output_indices_valid_and_unique(self, raw):
        boxes = np.array(raw)
        scores = np.ones(len(raw))
        keep = non_max_suppression(boxes, scores, 0.4)
        assert len(set(keep)) == len(keep)
        assert all(0 <= i < len(raw) for i in keep)


class TestKMeansProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_labels_within_k(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(40, 3))
        k = int(rng.integers(1, 6))
        km = KMeans(k, rng=rng).fit(data)
        labels = km.predict(data)
        assert labels.min() >= 0
        assert labels.max() < k

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_assignment_is_nearest_centroid(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 2))
        km = KMeans(3, rng=rng).fit(data)
        labels = km.predict(data)
        for point, label in zip(data, labels):
            dists = np.linalg.norm(km.centroids - point, axis=1)
            assert dists[label] == pytest.approx(dists.min())


class TestEnergyModelProperties:
    algorithms = st.sampled_from(["HOG", "ACF", "C4", "LSVM"])
    megapixels = st.floats(min_value=0.01, max_value=4.0)

    @given(algorithms, megapixels)
    def test_energy_positive(self, algorithm, mp):
        assert processing_energy(algorithm, mp) > 0

    @given(algorithms, megapixels, megapixels)
    def test_energy_monotone(self, algorithm, a, b):
        lo, hi = min(a, b), max(a, b)
        assert processing_energy(algorithm, lo) <= processing_energy(
            algorithm, hi
        ) + 1e-12

    @given(algorithms, megapixels)
    def test_time_positive(self, algorithm, mp):
        assert processing_time(algorithm, mp) > 0

    @given(megapixels)
    def test_acf_always_cheapest(self, mp):
        """ACF undercuts the others across the whole resolution range
        the paper spans — the property the downgrade step relies on."""
        acf = processing_energy("ACF", mp)
        for other in ("HOG", "C4", "LSVM"):
            assert acf < processing_energy(other, mp)


class TestTrackerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-5, max_value=5),
                st.floats(min_value=-5, max_value=5),
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_track_count_bounded_by_measurements(self, path):
        from repro.reid.fusion import ObjectGroup
        from repro.tracking.tracker import GroundPlaneTracker

        tracker = GroundPlaneTracker(confirm_hits=1, max_misses=100)
        for (x, y) in path:
            tracker.step([ObjectGroup(detections=[], ground_point=(x, y))])
        # One measurement per frame can never create more live tracks
        # than frames, and at least one track exists.
        assert 1 <= len(tracker.tracks) <= len(path)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_empty_frames_spawn_nothing(self, frames):
        from repro.tracking.tracker import GroundPlaneTracker

        tracker = GroundPlaneTracker()
        for _ in range(frames):
            tracker.step([])
        assert tracker.tracks == []
        assert tracker.retired == []

"""The perf layer: ArrayCache, TimingReport, parallel_map."""

import numpy as np
import pytest

from repro.perf.cache import ArrayCache, array_token
from repro.perf.parallel import parallel_map
from repro.perf.timing import TimingReport


class TestArrayToken:
    def test_equal_arrays_same_token(self, rng):
        a = rng.normal(size=(5, 7))
        b = a.copy()
        assert array_token(a) == array_token(b)

    def test_different_contents_differ(self, rng):
        a = rng.normal(size=(5, 7))
        b = a.copy()
        b[2, 3] += 1e-12
        assert array_token(a) != array_token(b)

    def test_shape_and_dtype_matter(self):
        flat = np.zeros(6)
        assert array_token(flat) != array_token(flat.reshape(2, 3))
        assert array_token(flat) != array_token(flat.astype(np.float32))

    def test_non_contiguous_ok(self, rng):
        a = rng.normal(size=(6, 6))
        assert array_token(a[:, ::2]) == array_token(a[:, ::2].copy())


class TestArrayCache:
    def test_hit_and_miss_counters(self):
        cache = ArrayCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.stats()["hit_rate"] == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = ArrayCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear_resets_counters(self):
        cache = ArrayCache()
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ArrayCache(max_entries=0)


class TestTimingReport:
    def test_section_aggregates(self):
        report = TimingReport()
        for _ in range(3):
            with report.section("work"):
                pass
        stats = report.sections["work"]
        assert stats.calls == 3
        assert stats.total_seconds >= 0.0
        assert "work" in report.format_report()

    def test_record_and_merge(self):
        a = TimingReport()
        a.record("x", 1.0)
        b = TimingReport()
        b.record("x", 2.0)
        b.record("y", 0.5)
        a.merge(b)
        assert a.sections["x"].calls == 2
        assert a.sections["x"].total_seconds == pytest.approx(3.0)
        assert a.sections["y"].total_seconds == pytest.approx(0.5)

    def test_empty_report(self):
        assert TimingReport().format_report() == "no timed sections"

    def test_as_dict(self):
        report = TimingReport()
        report.record("s", 0.25)
        d = report.as_dict()
        assert d["s"]["calls"] == 1
        assert d["s"]["mean_seconds"] == pytest.approx(0.25)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_fallback(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_matches_serial_order(self):
        items = list(range(17))
        serial = parallel_map(_square, items, workers=1)
        parallel = parallel_map(_square, items, workers=2)
        assert parallel == serial

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_generator_input(self):
        assert parallel_map(_square, (i for i in range(4)), workers=1) == [
            0,
            1,
            4,
            9,
        ]
